package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newParts(t *testing.T, caps []int64, cl Classifier, opts ...Options) *Partitioned {
	t.Helper()
	p, err := NewPartitioned(LRU, caps, cl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPartitionedValidation(t *testing.T) {
	if _, err := NewPartitioned(LRU, nil, SizeClassifier(100)); err == nil {
		t.Error("no partitions accepted")
	}
	if _, err := NewPartitioned(LRU, []int64{10}, nil); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewPartitioned(LRU, []int64{10, -1}, SizeClassifier(100)); err == nil {
		t.Error("negative partition capacity accepted")
	}
}

func TestSizeClassifier(t *testing.T) {
	cl := SizeClassifier(100, 1000)
	cases := map[int64]int{50: 0, 99: 0, 100: 1, 999: 1, 1000: 2, 5000: 2}
	for size, want := range cases {
		if got := cl(Doc{Size: size}); got != want {
			t.Errorf("size %d → partition %d, want %d", size, got, want)
		}
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Small docs (<100B) and large docs get separate 1000-byte pools: a
	// flood of large docs must not evict the small hot set — the point
	// of the browser cache switch.
	p := newParts(t, []int64{1000, 1000}, SizeClassifier(100))
	for i := 0; i < 10; i++ {
		mustPut(t, p, doc(fmt.Sprintf("small%d", i), 50))
	}
	for i := 0; i < 50; i++ {
		mustPut(t, p, doc(fmt.Sprintf("large%d", i), 400))
	}
	for i := 0; i < 10; i++ {
		if _, ok := p.Peek(fmt.Sprintf("small%d", i)); !ok {
			t.Fatalf("small%d evicted by large-doc flood", i)
		}
	}
	if p.Partition(1).Len() > 2 {
		t.Fatalf("large partition holds %d docs of 400B in 1000B", p.Partition(1).Len())
	}
}

func TestPartitionedRejectedPutKeepsOldVersion(t *testing.T) {
	// A key resident in the small partition gets a new version too large
	// for its target partition: the insert is rejected, and the old
	// version must remain resident (matching the flat caches' behavior).
	p := newParts(t, []int64{1000, 200}, SizeClassifier(100))
	mustPut(t, p, doc("u", 50)) // partition 0
	if _, admitted := p.Put(doc("u", 500)); admitted {
		t.Fatal("500B doc admitted into 200B partition")
	}
	if d, ok := p.Get("u"); !ok || d.Size != 50 {
		t.Fatalf("old version lost after rejected migration: %v %v", d, ok)
	}
	if p.Partition(0).Len() != 1 || p.Partition(1).Len() != 0 {
		t.Fatalf("partition state wrong: %d/%d", p.Partition(0).Len(), p.Partition(1).Len())
	}
}

func TestPartitionMigrationOnSizeChange(t *testing.T) {
	p := newParts(t, []int64{1000, 1000}, SizeClassifier(100))
	mustPut(t, p, doc("u", 50)) // partition 0
	if p.Partition(0).Len() != 1 {
		t.Fatal("doc not in small partition")
	}
	mustPut(t, p, doc("u", 500)) // new version is large → migrates
	if p.Partition(0).Len() != 0 || p.Partition(1).Len() != 1 {
		t.Fatalf("migration failed: %d/%d", p.Partition(0).Len(), p.Partition(1).Len())
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if d, ok := p.Get("u"); !ok || d.Size != 500 {
		t.Fatalf("Get after migration: %v %v", d, ok)
	}
}

func TestPartitionedClassifierClamped(t *testing.T) {
	p := newParts(t, []int64{1000}, func(Doc) int { return 99 })
	mustPut(t, p, doc("u", 10))
	if _, ok := p.Get("u"); !ok {
		t.Fatal("clamped classification lost the doc")
	}
	p2 := newParts(t, []int64{1000, 1000}, func(Doc) int { return -5 })
	mustPut(t, p2, doc("v", 10))
	if p2.Partition(0).Len() != 1 {
		t.Fatal("negative classification not clamped to 0")
	}
}

func TestPartitionedAccessors(t *testing.T) {
	var _ Cache = (*Partitioned)(nil)
	var evicted []string
	p := newParts(t, []int64{100, 100}, SizeClassifier(50),
		Options{OnEvict: func(d Doc) { evicted = append(evicted, d.Key) }})
	mustPut(t, p, doc("a", 40))
	mustPut(t, p, doc("b", 60))
	mustPut(t, p, doc("c", 60)) // evicts b from partition 1
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("OnEvict = %v", evicted)
	}
	if p.Capacity() != 200 || p.Used() != 100 || p.Len() != 2 {
		t.Fatalf("Cap=%d Used=%d Len=%d", p.Capacity(), p.Used(), p.Len())
	}
	if p.Policy() != LRU || p.NumPartitions() != 2 {
		t.Fatal("accessors wrong")
	}
	if got := len(p.Keys()); got != 2 {
		t.Fatalf("Keys len %d", got)
	}
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	if _, ok := p.Get("nope"); ok {
		t.Fatal("phantom hit")
	}
	if _, ok := p.Peek("nope"); ok {
		t.Fatal("phantom peek")
	}
}

// TestQuickPartitionedMatchesReference: the partitioned cache agrees with a
// reference map on membership and never exceeds any partition's capacity.
func TestQuickPartitionedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		caps := []int64{int64(rng.Intn(300) + 50), int64(rng.Intn(300) + 50), int64(rng.Intn(300) + 50)}
		p, err := NewPartitioned(LRU, caps, SizeClassifier(30, 80))
		if err != nil {
			t.Fatal(err)
		}
		resident := map[string]bool{}
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				size := int64(rng.Intn(120) + 1)
				if _, admitted := p.Put(Doc{Key: key, Size: size}); admitted {
					resident[key] = true
				}
				// A rejected Put leaves any existing version resident.
			case 1:
				if _, ok := p.Get(key); ok != resident[key] {
					// Capacity evictions may have removed it.
					if ok && !resident[key] {
						t.Errorf("seed %d: phantom resident %q", seed, key)
						return false
					}
					delete(resident, key)
				}
			case 2:
				p.Remove(key)
				delete(resident, key)
			}
			for pi := 0; pi < p.NumPartitions(); pi++ {
				part := p.Partition(pi)
				if part.Used() > part.Capacity() {
					t.Errorf("seed %d: partition %d over capacity", seed, pi)
					return false
				}
			}
			if p.Len() != len(p.Keys()) {
				t.Errorf("seed %d: Len %d != Keys %d", seed, p.Len(), len(p.Keys()))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
