package cache

import "container/heap"

// heapCache implements the priority-ordered policies (LFU, SIZE, GDSF) with a
// binary min-heap keyed by eviction priority: the root is the next victim.
type heapCache struct {
	policy   Policy
	capacity int64
	used     int64
	onEvict  EvictFunc
	items    map[string]*heapEntry
	pq       victimHeap
	seq      uint64  // monotonic reference clock for tie-breaking
	inflate  float64 // GDSF aging term L
}

type heapEntry struct {
	doc  Doc
	freq int64
	pri  float64 // eviction priority; smaller evicts first
	seq  uint64  // last-reference sequence; older evicts first on ties
	idx  int     // heap index
}

func newHeapCache(policy Policy, capacity int64, o Options) *heapCache {
	return &heapCache{
		policy:   policy,
		capacity: capacity,
		onEvict:  o.OnEvict,
		items:    make(map[string]*heapEntry),
	}
}

// priority computes the eviction priority of an entry under the policy.
func (c *heapCache) priority(e *heapEntry) float64 {
	switch c.policy {
	case LFU:
		return float64(e.freq)
	case SIZE:
		// Largest documents evicted first: invert the size.
		return -float64(e.doc.Size)
	case GDSF:
		size := e.doc.Size
		if size < 1 {
			size = 1
		}
		return c.inflate + float64(e.freq)/float64(size)
	default:
		return 0
	}
}

func (c *heapCache) touch(e *heapEntry) {
	e.freq++
	c.seq++
	e.seq = c.seq
	e.pri = c.priority(e)
	heap.Fix(&c.pq, e.idx)
}

func (c *heapCache) Get(key string) (Doc, bool) {
	e, ok := c.items[key]
	if !ok {
		return Doc{}, false
	}
	c.touch(e)
	return e.doc, true
}

func (c *heapCache) Peek(key string) (Doc, bool) {
	e, ok := c.items[key]
	if !ok {
		return Doc{}, false
	}
	return e.doc, true
}

func (c *heapCache) Put(doc Doc) ([]Doc, bool) {
	if doc.Size > c.capacity {
		return nil, false
	}
	if e, ok := c.items[doc.Key]; ok {
		c.used += doc.Size - e.doc.Size
		e.doc = doc
		c.touch(e)
		return c.shrink(doc.Key), true
	}
	c.seq++
	e := &heapEntry{doc: doc, freq: 1, seq: c.seq}
	e.pri = c.priority(e)
	c.items[doc.Key] = e
	heap.Push(&c.pq, e)
	c.used += doc.Size
	return c.shrink(doc.Key), true
}

func (c *heapCache) shrink(keep string) []Doc {
	var evicted []Doc
	for c.used > c.capacity && len(c.pq) > 0 {
		victim := c.pq[0]
		if victim.doc.Key == keep {
			// The just-inserted key fits by construction, so it can
			// be at the root only alongside other entries; evict the
			// better of its children instead.
			alt := c.betterChild(0)
			if alt < 0 {
				break
			}
			victim = c.pq[alt]
		}
		if c.policy == GDSF {
			c.inflate = victim.pri
		}
		c.removeEntry(victim)
		evicted = append(evicted, victim.doc)
		if c.onEvict != nil {
			c.onEvict(victim.doc)
		}
	}
	return evicted
}

// betterChild returns the index of the lower-priority child of node i, or -1.
func (c *heapCache) betterChild(i int) int {
	l, r := 2*i+1, 2*i+2
	switch {
	case l >= len(c.pq):
		return -1
	case r >= len(c.pq):
		return l
	case c.pq.Less(l, r):
		return l
	default:
		return r
	}
}

func (c *heapCache) removeEntry(e *heapEntry) {
	heap.Remove(&c.pq, e.idx)
	delete(c.items, e.doc.Key)
	c.used -= e.doc.Size
}

func (c *heapCache) Remove(key string) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeEntry(e)
	return true
}

func (c *heapCache) Len() int        { return len(c.items) }
func (c *heapCache) Used() int64     { return c.used }
func (c *heapCache) Capacity() int64 { return c.capacity }
func (c *heapCache) Policy() Policy  { return c.policy }

func (c *heapCache) Keys() []string {
	// Pop a copy of the heap to produce exact eviction order.
	cp := make(victimHeap, len(c.pq))
	copy(cp, c.pq)
	// Entries are shared; sorting the copy must not disturb idx fields, so
	// sort a parallel index slice by repeated sifting on a cloned heap of
	// lightweight views instead.
	views := make([]*heapEntry, len(cp))
	for i, e := range cp {
		v := *e
		views[i] = &v
		views[i].idx = i
	}
	vh := victimHeap(views)
	heap.Init(&vh)
	keys := make([]string, 0, len(views))
	for vh.Len() > 0 {
		keys = append(keys, heap.Pop(&vh).(*heapEntry).doc.Key)
	}
	return keys
}

// victimHeap orders entries so the next eviction victim is at the root.
type victimHeap []*heapEntry

func (h victimHeap) Len() int { return len(h) }

func (h victimHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq // older reference evicts first
}

func (h victimHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *victimHeap) Push(x any) {
	e := x.(*heapEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *victimHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
