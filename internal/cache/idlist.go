package cache

import "baps/internal/intern"

// idListCache implements LRU and FIFO over slice-backed storage: an intrusive
// doubly-linked list threaded through a nodes slice, with a dense docID →
// node-index table instead of a map. Steady-state Get/Put/Remove perform no
// allocation and no string hashing. The list runs from the eviction victim
// (front) to the most protected entry (back).
type idListCache struct {
	capacity int64
	used     int64
	promote  bool // true for LRU: Get moves to back; false for FIFO
	onEvict  IDEvictFunc

	// slot[doc] is the node index for doc, or 0 when not resident (node 0
	// is the sentinel, never a real entry). The slice grows to the largest
	// doc ID seen. In sparse mode slotMap replaces it: memory scales with
	// resident documents instead of the ID space, which is what lets 10^6
	// browser caches coexist over a multi-million document ID space.
	sparse  bool
	slot    []int32
	slotMap docSlot
	nodes   []idListNode // nodes[0] is the sentinel of the circular list
	free    []int32      // recycled node indices
	count   int
	evBuf   []IDDoc // reused eviction buffer returned by Put
}

type idListNode struct {
	doc        IDDoc
	prev, next int32
}

func newIDListCache(capacity int64, promote bool, o IDOptions) *idListCache {
	c := &idListCache{
		capacity: capacity,
		promote:  promote,
		onEvict:  o.OnEvict,
		sparse:   o.Sparse,
	}
	if o.Sparse {
		// Million-instance deployments: no speculative node preallocation.
		c.nodes = make([]idListNode, 1, 1)
	} else {
		c.nodes = make([]idListNode, 1, 64)
	}
	return c
}

func (c *idListCache) lookup(id intern.ID) int32 {
	if c.sparse {
		if id < 0 {
			return 0
		}
		return c.slotMap.get(id)
	}
	if id < 0 || int(id) >= len(c.slot) {
		return 0
	}
	return c.slot[id]
}

// setSlot records the node index for a resident document.
func (c *idListCache) setSlot(id intern.ID, n int32) {
	if c.sparse {
		c.slotMap.set(id, n)
		return
	}
	c.ensureSlot(id)
	c.slot[id] = n
}

// clearSlot forgets a document's node index.
func (c *idListCache) clearSlot(id intern.ID) {
	if c.sparse {
		c.slotMap.del(id)
		return
	}
	c.slot[id] = 0
}

func (c *idListCache) ensureSlot(id intern.ID) {
	if int(id) < len(c.slot) {
		return
	}
	if int(id) < cap(c.slot) {
		c.slot = c.slot[:int(id)+1]
		return
	}
	grown := make([]int32, int(id)+1, max(2*cap(c.slot), int(id)+1))
	copy(grown, c.slot)
	c.slot = grown
}

func (c *idListCache) unlink(n int32) {
	nd := &c.nodes[n]
	c.nodes[nd.prev].next = nd.next
	c.nodes[nd.next].prev = nd.prev
}

// pushBack places n in the most protected position.
func (c *idListCache) pushBack(n int32) {
	tail := c.nodes[0].prev
	c.nodes[tail].next = n
	c.nodes[n].prev = tail
	c.nodes[n].next = 0
	c.nodes[0].prev = n
}

func (c *idListCache) Get(id intern.ID) (IDDoc, bool) {
	n := c.lookup(id)
	if n == 0 {
		return IDDoc{}, false
	}
	if c.promote {
		c.unlink(n)
		c.pushBack(n)
	}
	return c.nodes[n].doc, true
}

func (c *idListCache) Peek(id intern.ID) (IDDoc, bool) {
	n := c.lookup(id)
	if n == 0 {
		return IDDoc{}, false
	}
	return c.nodes[n].doc, true
}

func (c *idListCache) Put(doc IDDoc) ([]IDDoc, bool) {
	if doc.Size > c.capacity {
		// Too large to ever fit; do not disturb resident documents.
		return nil, false
	}
	if n := c.lookup(doc.ID); n != 0 {
		// Replacement of an existing ID (e.g. a new document version):
		// update in place, then make room for any growth.
		c.used += doc.Size - c.nodes[n].doc.Size
		c.nodes[n].doc = doc
		if c.promote {
			c.unlink(n)
			c.pushBack(n)
		}
		return c.shrink(doc.ID), true
	}
	var n int32
	if ln := len(c.free); ln > 0 {
		n = c.free[ln-1]
		c.free = c.free[:ln-1]
		c.nodes[n].doc = doc
	} else {
		c.nodes = append(c.nodes, idListNode{doc: doc})
		n = int32(len(c.nodes) - 1)
	}
	c.setSlot(doc.ID, n)
	c.pushBack(n)
	c.used += doc.Size
	c.count++
	return c.shrink(doc.ID), true
}

// shrink evicts from the front until used <= capacity, never evicting keep.
// The returned slice aliases the cache's reusable eviction buffer.
func (c *idListCache) shrink(keep intern.ID) []IDDoc {
	if c.used <= c.capacity {
		return nil
	}
	c.evBuf = c.evBuf[:0]
	for c.used > c.capacity {
		victim := c.nodes[0].next
		if victim == 0 {
			break // nothing left to evict (cannot happen when keep fits)
		}
		if c.nodes[victim].doc.ID == keep {
			// keep is the only entry left but still over capacity;
			// guarded against by the size check in Put.
			victim = c.nodes[victim].next
			if victim == 0 {
				break
			}
		}
		doc := c.nodes[victim].doc
		c.removeNode(victim)
		c.evBuf = append(c.evBuf, doc)
		if c.onEvict != nil {
			c.onEvict(doc)
		}
	}
	return c.evBuf
}

func (c *idListCache) removeNode(n int32) {
	c.unlink(n)
	c.clearSlot(c.nodes[n].doc.ID)
	c.used -= c.nodes[n].doc.Size
	c.nodes[n] = idListNode{}
	c.free = append(c.free, n)
	c.count--
}

func (c *idListCache) Remove(id intern.ID) bool {
	n := c.lookup(id)
	if n == 0 {
		return false
	}
	c.removeNode(n)
	return true
}

func (c *idListCache) Len() int        { return c.count }
func (c *idListCache) Used() int64     { return c.used }
func (c *idListCache) Capacity() int64 { return c.capacity }

func (c *idListCache) Policy() Policy {
	if c.promote {
		return LRU
	}
	return FIFO
}

func (c *idListCache) IDs() []intern.ID {
	ids := make([]intern.ID, 0, c.count)
	for n := c.nodes[0].next; n != 0; n = c.nodes[n].next {
		ids = append(ids, c.nodes[n].doc.ID)
	}
	return ids
}

// Reset empties the cache in place and adopts a new capacity, retaining
// slot/node storage so a reused cache performs no growth allocations.
func (c *idListCache) Reset(capacity int64) {
	for i := range c.slot {
		c.slot[i] = 0
	}
	c.slotMap.reset()
	c.nodes = c.nodes[:1]
	c.nodes[0] = idListNode{}
	c.free = c.free[:0]
	c.used = 0
	c.count = 0
	c.capacity = capacity
}
