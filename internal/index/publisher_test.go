package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPublisherValidation(t *testing.T) {
	x := New(SelectFirst)
	if _, err := NewPublisher(nil, 1, Immediate, 0); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := NewPublisher(x, 1, Periodic, 0); err == nil {
		t.Error("zero threshold accepted for Periodic")
	}
	if _, err := NewPublisher(x, 1, Periodic, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewPublisher(x, 1, Immediate, 0); err != nil {
		t.Errorf("Immediate with zero threshold rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Immediate.String() != "immediate" || Periodic.String() != "periodic" {
		t.Error("Mode.String wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown Mode.String wrong")
	}
}

func TestImmediatePublisher(t *testing.T) {
	x := New(SelectFirst)
	p, err := NewPublisher(x, 3, Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.OnInsert(Entry{Doc: docID("u"), Size: 10}, 1)
	if !x.Has(3, docID("u")) {
		t.Fatal("immediate insert not visible")
	}
	p.OnEvict(docID("u"), 0)
	if x.Has(3, docID("u")) {
		t.Fatal("immediate evict not visible")
	}
	if p.Pending() != 0 || p.Flushes() != 0 {
		t.Fatalf("immediate mode tracked pending=%d flushes=%d", p.Pending(), p.Flushes())
	}
	if p.Mode() != Immediate {
		t.Fatal("Mode() wrong")
	}
}

func TestPeriodicPublisherBatches(t *testing.T) {
	x := New(SelectFirst)
	// Threshold 0.5 with 10 resident docs → flush at 5 changes.
	p, err := NewPublisher(x, 1, Periodic, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.OnInsert(Entry{Doc: docID(fmt.Sprintf("u%d", i)), Size: 1}, 10)
	}
	if x.Len() != 0 {
		t.Fatalf("changes visible before threshold: Len=%d", x.Len())
	}
	if p.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", p.Pending())
	}
	p.OnInsert(Entry{Doc: docID("u4"), Size: 1}, 10) // 5th change → flush
	if x.Len() != 5 {
		t.Fatalf("flush did not apply: Len=%d", x.Len())
	}
	if p.Flushes() != 1 || p.Pending() != 0 {
		t.Fatalf("flushes=%d pending=%d", p.Flushes(), p.Pending())
	}
}

func TestPeriodicEvictCancelsPendingAdd(t *testing.T) {
	x := New(SelectFirst)
	p, _ := NewPublisher(x, 1, Periodic, 1.0)
	p.OnInsert(Entry{Doc: docID("u"), Size: 1}, 100)
	p.OnEvict(docID("u"), 100)
	p.Flush()
	if x.Has(1, docID("u")) {
		t.Fatal("evicted-before-flush doc leaked into index")
	}
}

func TestPeriodicAddCancelsPendingRemove(t *testing.T) {
	x := New(SelectFirst)
	x.Add(Entry{Client: 1, Doc: docID("u"), Size: 1})
	p, _ := NewPublisher(x, 1, Periodic, 1.0)
	p.OnEvict(docID("u"), 100)
	p.OnInsert(Entry{Doc: docID("u"), Size: 2}, 100)
	p.Flush()
	if e, ok := x.Get(1, docID("u")); !ok || e.Size != 2 {
		t.Fatalf("re-added doc lost: %+v %v", e, ok)
	}
}

func TestFlushNoopWhenEmpty(t *testing.T) {
	x := New(SelectFirst)
	p, _ := NewPublisher(x, 1, Periodic, 0.5)
	p.Flush()
	if p.Flushes() != 0 {
		t.Fatal("empty Flush counted")
	}
}

func TestPeriodicStalenessWindow(t *testing.T) {
	// Demonstrates the §2/§5 staleness semantics: between flushes the index
	// claims a document the browser evicted (false hit).
	x := New(SelectFirst)
	x.Add(Entry{Client: 1, Doc: docID("u"), Size: 1})
	p, _ := NewPublisher(x, 1, Periodic, 1.0)
	p.OnEvict(docID("u"), 1000)
	if !x.Has(1, docID("u")) {
		t.Fatal("eviction visible before flush — not periodic semantics")
	}
	p.Flush()
	if x.Has(1, docID("u")) {
		t.Fatal("eviction lost after flush")
	}
}

// TestQuickPublisherConvergence: after an arbitrary op sequence plus a final
// Flush, the index view of the client equals the ground-truth resident set.
func TestQuickPublisherConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(SelectFirst)
		mode := Immediate
		if seed%2 == 0 {
			mode = Periodic
		}
		p, err := NewPublisher(x, 2, mode, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		resident := map[string]bool{}
		for i := 0; i < 400; i++ {
			url := fmt.Sprintf("u%d", rng.Intn(40))
			if rng.Intn(2) == 0 {
				resident[url] = true
				p.OnInsert(Entry{Doc: docID(url), Size: 1, Stamp: float64(i)}, len(resident))
			} else {
				delete(resident, url)
				p.OnEvict(docID(url), len(resident))
			}
		}
		p.Flush()
		docs := x.ClientDocs(2)
		if len(docs) != len(resident) {
			t.Errorf("seed %d (%v): index has %d docs, truth %d", seed, mode, len(docs), len(resident))
			return false
		}
		for _, e := range docs {
			if !resident[testSyms.String(e.Doc)] {
				t.Errorf("seed %d (%v): phantom doc %d", seed, mode, e.Doc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
