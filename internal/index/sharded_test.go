package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"baps/internal/intern"
)

// TestShardedMatchesIndex runs the same randomized operation sequence
// against a Sharded directory and a plain Index and asserts they agree on
// lookups, ordering, and counts — the sharding must be invisible to callers.
func TestShardedMatchesIndex(t *testing.T) {
	for _, strat := range []Strategy{SelectMostRecent, SelectLeastLoaded, SelectFirst} {
		t.Run(strat.String(), func(t *testing.T) {
			plain := New(strat)
			sharded := NewSharded(strat, 4)
			rng := rand.New(rand.NewSource(7))
			const clients, docs = 8, 64
			for op := 0; op < 4_000; op++ {
				client := rng.Intn(clients)
				doc := intern.ID(rng.Intn(docs))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					e := Entry{
						Client:  client,
						Doc:     doc,
						Size:    int64(100 + rng.Intn(900)),
						Stamp:   float64(op),
						Version: int64(rng.Intn(3)),
					}
					plain.Add(e)
					sharded.Add(e)
				case 4:
					if got, want := sharded.Remove(client, doc), plain.Remove(client, doc); got != want {
						t.Fatalf("op %d: Remove(%d,%d) = %v, plain %v", op, client, doc, got, want)
					}
				case 5:
					plain.Quarantine(client)
					sharded.Quarantine(client)
				case 6:
					plain.Unquarantine(client)
					sharded.Unquarantine(client)
				case 7:
					if got, want := sharded.DropClient(client), plain.DropClient(client); got != want {
						t.Fatalf("op %d: DropClient(%d) = %d, plain %d", op, client, got, want)
					}
				default:
					requester := rng.Intn(clients)
					got := sharded.Ordered(doc, requester)
					want := plain.Ordered(doc, requester)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("op %d: Ordered(%d,%d) = %v, plain %v", op, doc, requester, got, want)
					}
				}
			}
			if sharded.Len() != plain.Len() {
				t.Fatalf("Len: sharded %d, plain %d", sharded.Len(), plain.Len())
			}
			if sharded.URLCount() != plain.URLCount() {
				t.Fatalf("URLCount: sharded %d, plain %d", sharded.URLCount(), plain.URLCount())
			}
			for c := 0; c < clients; c++ {
				if got, want := len(sharded.ClientDocs(c)), len(plain.ClientDocs(c)); got != want {
					t.Fatalf("ClientDocs(%d): sharded %d, plain %d", c, got, want)
				}
			}
		})
	}
}

// TestShardedConcurrentChurn hammers one Sharded directory from many
// goroutines mixing every mutation the live proxy performs — adds, removes,
// ordered reads, allocation-free reads, quarantine flips, and full client
// drops/resyncs — and relies on the race detector (make check runs this
// package under -race) to catch locking mistakes across the shard/clientTable
// boundary.
func TestShardedConcurrentChurn(t *testing.T) {
	x := NewSharded(SelectLeastLoaded, 8)
	const (
		clients = 16
		docs    = 256
		opsPer  = 2_000
	)
	var wg sync.WaitGroup
	// Writers: per-client add/remove churn.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(client)))
			for i := 0; i < opsPer; i++ {
				doc := intern.ID(rng.Intn(docs))
				if rng.Intn(3) == 0 {
					x.Remove(client, doc)
				} else {
					x.Add(Entry{Client: client, Doc: doc, Size: 100, Stamp: float64(i)})
				}
			}
		}(c)
	}
	// Readers: strategy-ordered candidate lists, both allocating and
	// buffer-reusing forms, plus point lookups and client scans.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			var buf []Entry
			for i := 0; i < opsPer; i++ {
				doc := intern.ID(rng.Intn(docs))
				requester := rng.Intn(clients)
				switch i % 4 {
				case 0:
					x.Ordered(doc, requester)
				case 1:
					buf = x.AppendOrdered(buf[:0], doc, requester, 0)
				case 2:
					x.Lookup(doc)
					x.Has(requester, doc)
				default:
					x.ClientDocs(requester)
					x.OrderedQuarantined(doc, requester)
				}
			}
		}(int64(r))
	}
	// Quarantine flipper: the health tracker's view of failing peers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		for i := 0; i < opsPer; i++ {
			client := rng.Intn(clients)
			if i%2 == 0 {
				x.Quarantine(client)
			} else {
				x.Unquarantine(client)
			}
			x.AccountServe(client)
			x.Served(client)
		}
	}()
	// Churner: clients leaving and rejoining with a resync snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(888))
		for i := 0; i < opsPer/4; i++ {
			client := rng.Intn(clients)
			x.DropClient(client)
			entries := make([]Entry, 0, 4)
			for j := 0; j < 4; j++ {
				entries = append(entries, Entry{
					Client: client,
					Doc:    intern.ID(rng.Intn(docs)),
					Size:   100,
					Stamp:  float64(i),
				})
			}
			x.ResyncClient(client, entries)
			x.Len()
		}
	}()
	wg.Wait()

	// Steady-state sanity: every surviving entry is reachable and counts
	// line up across shards.
	total := 0
	for c := 0; c < clients; c++ {
		x.Unquarantine(c)
		for _, e := range x.ClientDocs(c) {
			if !x.Has(c, e.Doc) {
				t.Fatalf("client %d doc %d in ClientDocs but Has is false", c, e.Doc)
			}
			total++
		}
	}
	if got := x.Len(); got != total {
		t.Fatalf("Len %d != sum of ClientDocs %d", got, total)
	}
}
