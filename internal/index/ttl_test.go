package index

import "testing"

func TestOrderedAtFiltersExpired(t *testing.T) {
	x := New(SelectMostRecent)
	x.Add(Entry{Client: 1, Doc: docID("u"), Size: 10, Stamp: 0, Expire: 100})
	x.Add(Entry{Client: 2, Doc: docID("u"), Size: 10, Stamp: 5, Expire: 50})

	// Before any expiry: both offered, client 2 preferred (newer stamp).
	got := x.OrderedAt(docID("u"), 0, 10)
	if len(got) != 2 || got[0].Client != 2 {
		t.Fatalf("OrderedAt(10) = %+v", got)
	}
	// After client 2's TTL: only client 1.
	got = x.OrderedAt(docID("u"), 0, 60)
	if len(got) != 1 || got[0].Client != 1 {
		t.Fatalf("OrderedAt(60) = %+v", got)
	}
	// After both: none.
	if got = x.OrderedAt(docID("u"), 0, 100); len(got) != 0 {
		t.Fatalf("OrderedAt(100) = %+v", got)
	}
	// now == 0 disables filtering (and is what Ordered uses).
	if got = x.Ordered(docID("u"), 0); len(got) != 2 {
		t.Fatalf("Ordered = %+v", got)
	}
}

func TestOrderedAtZeroExpireNeverFiltered(t *testing.T) {
	x := New(SelectFirst)
	x.Add(Entry{Client: 1, Doc: docID("u"), Size: 10}) // Expire == 0: immortal
	if got := x.OrderedAt(docID("u"), 0, 1e12); len(got) != 1 {
		t.Fatalf("immortal entry filtered: %+v", got)
	}
}

func TestPruneExpired(t *testing.T) {
	x := New(SelectFirst)
	x.Add(Entry{Client: 1, Doc: docID("a"), Expire: 10})
	x.Add(Entry{Client: 1, Doc: docID("b"), Expire: 100})
	x.Add(Entry{Client: 2, Doc: docID("a"), Expire: 5})
	x.Add(Entry{Client: 2, Doc: docID("c")}) // immortal

	if n := x.PruneExpired(50); n != 2 {
		t.Fatalf("pruned %d, want 2", n)
	}
	if x.Has(1, docID("a")) || x.Has(2, docID("a")) {
		t.Fatal("expired entries survived")
	}
	if !x.Has(1, docID("b")) || !x.Has(2, docID("c")) {
		t.Fatal("live entries pruned")
	}
	if x.URLCount() != 2 {
		t.Fatalf("URLCount = %d", x.URLCount())
	}
	if n := x.PruneExpired(50); n != 0 {
		t.Fatalf("second prune removed %d", n)
	}
}
