package index

import "testing"

// TestBatchedPublisherShipsOnlyDeltas pins the §5 message accounting that
// separates the three protocols: Batched pays one message per flush like
// Periodic, but ships only the net deltas instead of the full directory.
func TestBatchedPublisherShipsOnlyDeltas(t *testing.T) {
	x := New(SelectFirst)
	p, err := NewPublisher(x, 1, Batched, 1) // flush only when asked
	if err != nil {
		t.Fatal(err)
	}
	const resident = 40
	p.OnInsert(Entry{Doc: docID("a"), Size: 1}, resident)
	p.OnInsert(Entry{Doc: docID("b"), Size: 1}, resident)
	p.OnEvict(docID("c"), resident)
	p.Flush()
	if got := p.Messages(); got != 1 {
		t.Fatalf("Messages = %d, want 1", got)
	}
	if got := p.EntriesShipped(); got != 3 {
		t.Fatalf("EntriesShipped = %d, want 3 net deltas (not the %d-doc directory)", got, resident)
	}
	if !x.Has(1, docID("a")) || !x.Has(1, docID("b")) {
		t.Fatal("batched flush did not apply adds")
	}

	// Same sequence under Periodic ships the whole resident directory.
	q, err := NewPublisher(New(SelectFirst), 1, Periodic, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.OnInsert(Entry{Doc: docID("a"), Size: 1}, resident)
	q.OnInsert(Entry{Doc: docID("b"), Size: 1}, resident)
	q.OnEvict(docID("c"), resident)
	q.Flush()
	if got := q.EntriesShipped(); got != resident {
		t.Fatalf("Periodic EntriesShipped = %d, want resident %d", got, resident)
	}
}

// TestBatchedCoalescesChurn checks last-write-wins coalescing: a document
// cached and evicted between flushes ships as a single removal, and an
// evicted-then-recached document as a single add.
func TestBatchedCoalescesChurn(t *testing.T) {
	x := New(SelectFirst)
	p, err := NewPublisher(x, 2, Batched, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.OnInsert(Entry{Doc: docID("churn"), Size: 1}, 10)
	p.OnEvict(docID("churn"), 10)
	p.OnInsert(Entry{Doc: docID("back"), Size: 1}, 10)
	p.OnEvict(docID("back"), 10)
	p.OnInsert(Entry{Doc: docID("back"), Size: 2}, 10)
	p.Flush()
	// churn → one removal; back → one add: 2 entries on the wire.
	if got := p.EntriesShipped(); got != 2 {
		t.Fatalf("EntriesShipped = %d, want 2 coalesced deltas", got)
	}
	if x.Has(2, docID("churn")) {
		t.Fatal("evicted doc survived coalescing")
	}
	e, ok := x.Get(2, docID("back"))
	if !ok || e.Size != 2 {
		t.Fatalf("recached doc lost or stale: ok=%v size=%d", ok, e.Size)
	}
}

// TestPeriodicThresholdZeroResident pins the max(resident, 1) guard: a
// publisher whose cache just went empty (resident == 0) must still be able
// to flush — and account the flush — without dividing by zero or stalling.
func TestPeriodicThresholdZeroResident(t *testing.T) {
	for _, mode := range []Mode{Periodic, Batched} {
		x := New(SelectFirst)
		p, err := NewPublisher(x, 1, mode, 1)
		if err != nil {
			t.Fatal(err)
		}
		x.Add(Entry{Client: 1, Doc: docID("last")})
		// The last resident doc evicts: resident drops to 0 and the
		// threshold (1 × max(0,1) = 1 change) trips immediately.
		p.OnEvict(docID("last"), 0)
		if p.Flushes() != 1 {
			t.Fatalf("%s: empty-cache eviction did not flush (flushes=%d)", mode, p.Flushes())
		}
		if x.Has(1, docID("last")) {
			t.Fatalf("%s: eviction not applied", mode)
		}
		if p.Messages() != 1 || p.EntriesShipped() != 1 {
			t.Fatalf("%s: msgs=%d entries=%d, want 1/1", mode, p.Messages(), p.EntriesShipped())
		}
	}
}

// TestEvictionOnlyBatch checks a flush carrying only removals: the batch is
// counted, applied, and ships exactly the removal count.
func TestEvictionOnlyBatch(t *testing.T) {
	x := New(SelectFirst)
	p, err := NewPublisher(x, 4, Batched, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"e1", "e2", "e3"} {
		x.Add(Entry{Client: 4, Doc: docID(u), Size: 1})
	}
	for _, u := range []string{"e1", "e2", "e3"} {
		p.OnEvict(docID(u), 20)
	}
	p.Flush()
	if p.Messages() != 1 || p.EntriesShipped() != 3 {
		t.Fatalf("eviction-only batch: msgs=%d entries=%d, want 1/3", p.Messages(), p.EntriesShipped())
	}
	for _, u := range []string{"e1", "e2", "e3"} {
		if x.Has(4, docID(u)) {
			t.Fatalf("%s not removed by eviction-only batch", u)
		}
	}
}

func TestImmediateMessageAccounting(t *testing.T) {
	x := New(SelectFirst)
	p, err := NewPublisher(x, 1, Immediate, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.OnInsert(Entry{Doc: docID("m"), Size: 1}, 1)
	p.OnEvict(docID("m"), 0)
	if p.Messages() != 2 || p.EntriesShipped() != 2 {
		t.Fatalf("immediate: msgs=%d entries=%d, want 2/2 (one entry per op)", p.Messages(), p.EntriesShipped())
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{Immediate, Periodic, Batched} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus name")
	}
	if _, err := NewPublisher(New(SelectFirst), 1, Batched, 0); err == nil {
		t.Error("Batched publisher accepted zero threshold")
	}
}
