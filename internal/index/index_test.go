package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"baps/internal/intern"
)

// testSyms interns test URLs to document IDs; Sync so concurrent tests may
// intern from multiple goroutines.
var testSyms = intern.NewSync()

func docID(url string) intern.ID { return testSyms.Intern(url) }

func entry(c int, url string, size int64, stamp float64) Entry {
	return Entry{Client: c, Doc: docID(url), Size: size, Stamp: stamp}
}

func TestAddLookupRemove(t *testing.T) {
	x := New(SelectFirst)
	x.Add(entry(1, "u", 10, 1))
	x.Add(entry(2, "u", 10, 2))
	x.Add(entry(1, "v", 20, 3))

	hs := x.Lookup(docID("u"))
	if len(hs) != 2 || hs[0].Client != 1 || hs[1].Client != 2 {
		t.Fatalf("Lookup(u) = %+v", hs)
	}
	if !x.Has(1, docID("u")) || x.Has(3, docID("u")) {
		t.Fatal("Has wrong")
	}
	if e, ok := x.Get(1, docID("v")); !ok || e.Size != 20 {
		t.Fatalf("Get(1,v) = %+v, %v", e, ok)
	}
	if !x.Remove(1, docID("u")) {
		t.Fatal("Remove(1,u) = false")
	}
	if x.Remove(1, docID("u")) {
		t.Fatal("second Remove(1,u) = true")
	}
	if x.Has(1, docID("u")) {
		t.Fatal("entry survived Remove")
	}
	if len(x.Lookup(docID("u"))) != 1 {
		t.Fatal("other holder lost")
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d, want 2", x.Len())
	}
	if x.URLCount() != 2 {
		t.Fatalf("URLCount = %d, want 2", x.URLCount())
	}
}

func TestAddRefreshesEntry(t *testing.T) {
	x := New(SelectFirst)
	x.Add(entry(1, "u", 10, 1))
	x.Add(entry(1, "u", 99, 5)) // refresh: new size/stamp
	if e, _ := x.Get(1, docID("u")); e.Size != 99 || e.Stamp != 5 {
		t.Fatalf("refresh lost: %+v", e)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d after refresh", x.Len())
	}
}

func TestSelectExcludesRequester(t *testing.T) {
	x := New(SelectFirst)
	x.Add(entry(1, "u", 10, 1))
	if _, ok := x.Select(docID("u"), 1); ok {
		t.Fatal("Select returned the requester itself")
	}
	if _, ok := x.Select(docID("missing"), 0); ok {
		t.Fatal("Select found a holder for an unindexed URL")
	}
	x.Add(entry(2, "u", 10, 2))
	e, ok := x.Select(docID("u"), 1)
	if !ok || e.Client != 2 {
		t.Fatalf("Select = %+v, %v", e, ok)
	}
}

func TestSelectMostRecent(t *testing.T) {
	x := New(SelectMostRecent)
	x.Add(entry(1, "u", 10, 5))
	x.Add(entry(2, "u", 10, 9))
	x.Add(entry(3, "u", 10, 2))
	if e, _ := x.Select(docID("u"), 0); e.Client != 2 {
		t.Fatalf("most-recent chose client %d, want 2", e.Client)
	}
	// Ties break to the lowest client id.
	y := New(SelectMostRecent)
	y.Add(entry(7, "u", 10, 4))
	y.Add(entry(3, "u", 10, 4))
	if e, _ := y.Select(docID("u"), 0); e.Client != 3 {
		t.Fatalf("tie-break chose %d, want 3", e.Client)
	}
}

func TestSelectLeastLoaded(t *testing.T) {
	x := New(SelectLeastLoaded)
	x.Add(entry(1, "u", 10, 1))
	x.Add(entry(2, "u", 10, 1))
	first, _ := x.Select(docID("u"), 0)  // both at 0 → client 1
	second, _ := x.Select(docID("u"), 0) // client 1 now loaded → client 2
	if first.Client != 1 || second.Client != 2 {
		t.Fatalf("least-loaded order: %d then %d, want 1 then 2", first.Client, second.Client)
	}
	if x.Served(1) != 1 || x.Served(2) != 1 {
		t.Fatalf("served counts: %d/%d", x.Served(1), x.Served(2))
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{SelectMostRecent: "most-recent", SelectLeastLoaded: "least-loaded", SelectFirst: "first", Strategy(9): "Strategy(9)"} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestClientDocsAndDropClient(t *testing.T) {
	x := New(SelectFirst)
	x.Add(entry(1, "b", 10, 1))
	x.Add(entry(1, "a", 10, 1))
	x.Add(entry(2, "a", 10, 1))
	docs := x.ClientDocs(1)
	if len(docs) != 2 || docs[0].Doc >= docs[1].Doc {
		t.Fatalf("ClientDocs = %+v (want 2 entries in doc-ID order)", docs)
	}
	got := map[intern.ID]bool{docs[0].Doc: true, docs[1].Doc: true}
	if !got[docID("a")] || !got[docID("b")] {
		t.Fatalf("ClientDocs = %+v, want {a, b}", docs)
	}
	if n := x.DropClient(1); n != 2 {
		t.Fatalf("DropClient removed %d, want 2", n)
	}
	if x.Has(1, docID("a")) || !x.Has(2, docID("a")) {
		t.Fatal("DropClient wrong entries removed")
	}
	if len(x.ClientDocs(1)) != 0 {
		t.Fatal("dropped client still has docs")
	}
}

func TestResyncClient(t *testing.T) {
	x := New(SelectFirst)
	x.Add(entry(1, "old1", 10, 1))
	x.Add(entry(1, "old2", 10, 1))
	x.Add(entry(2, "old1", 10, 1))
	x.ResyncClient(1, []Entry{entry(0 /* overwritten */, "new1", 5, 2), entry(0, "new2", 5, 2)})
	if x.Has(1, docID("old1")) || x.Has(1, docID("old2")) {
		t.Fatal("resync kept stale entries")
	}
	if !x.Has(1, docID("new1")) || !x.Has(1, docID("new2")) {
		t.Fatal("resync lost new entries")
	}
	if !x.Has(2, docID("old1")) {
		t.Fatal("resync disturbed another client")
	}
}

func TestConcurrentIndexAccess(t *testing.T) {
	x := New(SelectMostRecent)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				doc := docID(fmt.Sprintf("u%d", i%50))
				x.Add(Entry{Client: g, Doc: doc, Size: 10, Stamp: float64(i)})
				x.Lookup(doc)
				x.Select(doc, g)
				if i%3 == 0 {
					x.Remove(g, doc)
				}
			}
		}(g)
	}
	wg.Wait() // relies on -race in CI runs to surface data races
}

func TestSpaceEstimates(t *testing.T) {
	// The paper's §5 example: 100 clients × ~1000 cached pages each with
	// 16-byte MD5 signatures should land in the low megabytes.
	got := SpaceEstimate(100 * 1000)
	if got < 1<<20 || got > 8<<20 {
		t.Errorf("SpaceEstimate(100k) = %d bytes, want a few MB", got)
	}
	if b := BloomSpaceEstimate(100, 1000, 16); b != 100*1000*16 {
		t.Errorf("BloomSpaceEstimate = %d", b)
	}
}

func TestBloomIndex(t *testing.T) {
	b, err := NewBloomIndex(1<<14, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(1, "u")
	b.Add(2, "u")
	b.Add(2, "v")
	got := b.Candidates("u", 1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Candidates(u, exclude 1) = %v", got)
	}
	b.Remove(2, "u")
	for _, c := range b.Candidates("u", -1) {
		if c == 2 {
			t.Fatal("client 2 still candidate after Remove")
		}
	}
	if b.SizeBytes() != 2*(1<<14) {
		t.Fatalf("SizeBytes = %d", b.SizeBytes())
	}
	if _, err := NewBloomIndex(0, 4); err == nil {
		t.Error("NewBloomIndex(0,4) succeeded")
	}
}

// TestQuickIndexMatchesReference drives the index against a reference
// map-of-maps with random operations.
func TestQuickIndexMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := New(SelectFirst)
		ref := map[string]map[int]bool{}
		for i := 0; i < 500; i++ {
			c := rng.Intn(6)
			url := fmt.Sprintf("u%d", rng.Intn(30))
			switch rng.Intn(3) {
			case 0:
				x.Add(entry(c, url, 1, float64(i)))
				if ref[url] == nil {
					ref[url] = map[int]bool{}
				}
				ref[url][c] = true
			case 1:
				got := x.Remove(c, docID(url))
				want := ref[url][c]
				if got != want {
					t.Errorf("seed %d op %d: Remove(%d,%s)=%v want %v", seed, i, c, url, got, want)
					return false
				}
				delete(ref[url], c)
			case 2:
				got := x.Lookup(docID(url))
				if len(got) != len(ref[url]) {
					t.Errorf("seed %d op %d: Lookup(%s) len %d want %d", seed, i, url, len(got), len(ref[url]))
					return false
				}
				for _, e := range got {
					if !ref[url][e.Client] {
						t.Errorf("seed %d op %d: phantom holder %d for %s", seed, i, e.Client, url)
						return false
					}
				}
			}
		}
		// Global consistency: per-client view matches per-document view.
		total := 0
		for url, holders := range ref {
			for c := range holders {
				if !x.Has(c, docID(url)) {
					t.Errorf("seed %d: missing (%d,%s)", seed, c, url)
					return false
				}
				total++
			}
		}
		if x.Len() != total {
			t.Errorf("seed %d: Len %d want %d", seed, x.Len(), total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuarantineShelvesAndRestoresInOneStep(t *testing.T) {
	x := New(SelectMostRecent)
	for i := 0; i < 4; i++ {
		x.Add(Entry{Client: 1, Doc: docID(fmt.Sprintf("http://x/%d", i)), Size: 10})
	}
	x.Add(Entry{Client: 2, Doc: docID("http://x/0"), Size: 10})

	if n := x.Quarantine(1); n != 4 {
		t.Fatalf("Quarantine shelved %d entries, want 4", n)
	}
	if !x.Quarantined(1) || x.Quarantined(2) {
		t.Fatal("quarantine flags wrong")
	}
	// Entries survive but are invisible to holder selection.
	if x.Len() != 5 {
		t.Fatalf("Len = %d after quarantine, want 5 (entries retained)", x.Len())
	}
	if x.QuarantinedEntries() != 4 {
		t.Fatalf("QuarantinedEntries = %d, want 4", x.QuarantinedEntries())
	}
	if got := x.Ordered(docID("http://x/1"), -1); len(got) != 0 {
		t.Fatalf("Ordered returned quarantined holder: %v", got)
	}
	if got := x.Ordered(docID("http://x/0"), -1); len(got) != 1 || got[0].Client != 2 {
		t.Fatalf("Ordered(/0) = %v, want only client 2", got)
	}
	if _, ok := x.Select(docID("http://x/1"), -1); ok {
		t.Fatal("Select picked a quarantined holder")
	}
	// Quarantined holders are listed for half-open probing.
	if got := x.OrderedQuarantined(docID("http://x/0"), -1); len(got) != 1 || got[0].Client != 1 {
		t.Fatalf("OrderedQuarantined = %v, want client 1", got)
	}

	// One-step restore.
	if n := x.Unquarantine(1); n != 4 {
		t.Fatalf("Unquarantine restored %d entries, want 4", n)
	}
	if got := x.Ordered(docID("http://x/1"), -1); len(got) != 1 || got[0].Client != 1 {
		t.Fatalf("holder not restored: %v", got)
	}
	if x.QuarantinedEntries() != 0 {
		t.Fatal("QuarantinedEntries nonzero after restore")
	}
}

func TestDropClientClearsQuarantine(t *testing.T) {
	x := New(SelectFirst)
	x.Add(Entry{Client: 7, Doc: docID("http://x/a")})
	x.Quarantine(7)
	x.DropClient(7)
	if x.Quarantined(7) {
		t.Fatal("DropClient left quarantine flag")
	}
	if x.QuarantinedEntries() != 0 {
		t.Fatal("entries counted after drop")
	}
	// Re-registration under the same id starts clean.
	x.Add(Entry{Client: 7, Doc: docID("http://x/b")})
	if got := x.Ordered(docID("http://x/b"), -1); len(got) != 1 {
		t.Fatalf("re-added client invisible: %v", got)
	}
}
