package index

import (
	"testing"

	"baps/internal/intern"
)

// Hot-path micro-benchmarks of the browser index. Name-stable across
// representation changes so BENCH_*.json baselines stay comparable.

func BenchmarkIndexAddRemoveHot(b *testing.B) {
	x := New(SelectMostRecent)
	x.Grow(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := intern.ID(i % 8192)
		x.Add(Entry{Client: i % 64, Doc: doc, Size: 8192, Stamp: float64(i)})
		if i%3 == 0 {
			x.Remove(i%64, doc)
		}
	}
}

// BenchmarkIndexOrdered measures the holder-selection walk the simulator
// performs on every proxy miss under the browsers-aware organization.
func BenchmarkIndexOrdered(b *testing.B) {
	x := New(SelectMostRecent)
	x.Grow(1024)
	for i := 0; i < 8192; i++ {
		x.Add(Entry{Client: i % 64, Doc: intern.ID(i % 1024), Size: 8192, Stamp: float64(i)})
	}
	var buf []Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.AppendOrdered(buf[:0], intern.ID(i%1024), i%64, 0)
	}
}

// BenchmarkShardedOrdered is BenchmarkIndexOrdered against the live proxy's
// lock-striped variant, exercising the shard-selection path.
func BenchmarkShardedOrdered(b *testing.B) {
	x := NewSharded(SelectMostRecent, 0)
	for i := 0; i < 8192; i++ {
		x.Add(Entry{Client: i % 64, Doc: intern.ID(i % 1024), Size: 8192, Stamp: float64(i)})
	}
	var buf []Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.AppendOrdered(buf[:0], intern.ID(i%1024), i%64, 0)
	}
}
