package index

import (
	"math/rand"
	"testing"

	"baps/internal/intern"
)

// randomDeltas builds n deltas over a doc space, ~1/3 removals, at most one
// delta per doc (the batch sender coalesces per URL).
func randomDeltas(rng *rand.Rand, n, docSpace int) []Delta {
	seen := make(map[intern.ID]bool)
	deltas := make([]Delta, 0, n)
	for len(deltas) < n {
		doc := intern.ID(rng.Intn(docSpace))
		if seen[doc] {
			continue
		}
		seen[doc] = true
		if rng.Intn(3) == 0 {
			deltas = append(deltas, Delta{Entry: Entry{Doc: doc}, Remove: true})
		} else {
			deltas = append(deltas, Delta{Entry: Entry{
				Doc: doc, Size: int64(rng.Intn(1 << 16)), Version: int64(rng.Intn(5)),
				Stamp: rng.Float64() * 1e4,
			}})
		}
	}
	return deltas
}

// applySequential is the per-entry reference semantics ApplyBatch must match.
func applySequential(add func(Entry), remove func(int, intern.ID), client int, deltas []Delta) {
	for _, d := range deltas {
		if d.Remove {
			remove(client, d.Doc)
		} else {
			e := d.Entry
			e.Client = client
			add(e)
		}
	}
}

func TestIndexApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batched := New(SelectMostRecent)
	seq := New(SelectMostRecent)
	for round := 0; round < 20; round++ {
		client := round % 4
		deltas := randomDeltas(rng, 64, 512)
		batched.ApplyBatch(client, deltas)
		applySequential(seq.Add, func(c int, d intern.ID) { seq.Remove(c, d) }, client, deltas)
	}
	if batched.Len() != seq.Len() {
		t.Fatalf("Len diverged: batch=%d seq=%d", batched.Len(), seq.Len())
	}
	for client := 0; client < 4; client++ {
		want := seq.ClientDocs(client)
		for _, e := range want {
			got, ok := batched.Get(client, e.Doc)
			if !ok {
				t.Fatalf("client %d doc %d missing after ApplyBatch", client, e.Doc)
			}
			if got != e {
				t.Fatalf("client %d doc %d entry diverged: %+v vs %+v", client, e.Doc, got, e)
			}
		}
		if len(want) != len(batched.ClientDocs(client)) {
			t.Fatalf("client %d directory size diverged", client)
		}
	}
}

func TestShardedApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	batched := NewSharded(SelectMostRecent, 16)
	seq := NewSharded(SelectMostRecent, 16)
	for round := 0; round < 20; round++ {
		client := round % 4
		deltas := randomDeltas(rng, 64, 512)
		batched.ApplyBatch(client, deltas)
		applySequential(seq.Add, func(c int, d intern.ID) { seq.Remove(c, d) }, client, deltas)
	}
	if batched.Len() != seq.Len() {
		t.Fatalf("Len diverged: batch=%d seq=%d", batched.Len(), seq.Len())
	}
	for client := 0; client < 4; client++ {
		for _, e := range seq.ClientDocs(client) {
			got, ok := batched.Get(client, e.Doc)
			if !ok || got != e {
				t.Fatalf("client %d doc %d diverged (ok=%v): %+v vs %+v", client, e.Doc, ok, got, e)
			}
		}
		if len(seq.ClientDocs(client)) != len(batched.ClientDocs(client)) {
			t.Fatalf("client %d directory size diverged", client)
		}
	}
}

func TestApplyBatchForcesClient(t *testing.T) {
	x := New(SelectFirst)
	// A delta claiming another client id must be applied under the
	// authenticated id — the wire batch carries no per-delta client.
	x.ApplyBatch(3, []Delta{{Entry: Entry{Client: 99, Doc: docID("u"), Size: 8}}})
	if !x.Has(3, docID("u")) {
		t.Fatal("entry not applied under batch client")
	}
	if x.Has(99, docID("u")) {
		t.Fatal("delta's own client id leaked through")
	}
	x.ApplyBatch(3, []Delta{{Entry: Entry{Doc: docID("u")}, Remove: true}})
	if x.Has(3, docID("u")) {
		t.Fatal("batched remove not applied")
	}
}

func TestApplyBatchRemoveAbsentIsNoop(t *testing.T) {
	s := NewSharded(SelectFirst, 4)
	s.ApplyBatch(1, []Delta{
		{Entry: Entry{Doc: intern.ID(5)}, Remove: true}, // never added
		{Entry: Entry{Doc: intern.ID(6), Size: 1}},
	})
	if s.Len() != 1 || !s.Has(1, intern.ID(6)) {
		t.Fatalf("batch with absent removal misapplied: len=%d", s.Len())
	}
}

// benchDeltas builds a fixed batch: 96 upserts + 32 removals of previously
// added docs, the shape a browser flush produces under cache churn.
func benchDeltas(docBase int) []Delta {
	deltas := make([]Delta, 0, 128)
	for i := 0; i < 96; i++ {
		deltas = append(deltas, Delta{Entry: Entry{
			Doc: intern.ID(docBase + i), Size: 8192, Stamp: float64(i),
		}})
	}
	for i := 0; i < 32; i++ {
		deltas = append(deltas, Delta{Entry: Entry{Doc: intern.ID(docBase + 96 + i)}, Remove: true})
	}
	return deltas
}

// BenchmarkApplyBatch measures the grouped per-shard application of one
// 128-delta batch against the sharded index.
func BenchmarkApplyBatch(b *testing.B) {
	s := NewSharded(SelectMostRecent, 16)
	deltas := benchDeltas(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyBatch(i%64, deltas)
	}
}

// BenchmarkApplyBatchPerEntry is the baseline: the same 128 deltas applied
// as individual Add/Remove calls (one lock acquisition each), the cost the
// batched endpoint replaces.
func BenchmarkApplyBatchPerEntry(b *testing.B) {
	s := NewSharded(SelectMostRecent, 16)
	deltas := benchDeltas(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := i % 64
		for _, d := range deltas {
			if d.Remove {
				s.Remove(client, d.Doc)
			} else {
				e := d.Entry
				e.Client = client
				s.Add(e)
			}
		}
	}
}

// Parallel variants: the batched win is lock-acquisition count under
// contention — many agents flushing into the shared index at once, the
// /index/batch serving situation — not single-threaded throughput.
func BenchmarkApplyBatchContended(b *testing.B) {
	s := NewSharded(SelectMostRecent, 16)
	deltas := benchDeltas(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		client := 0
		for pb.Next() {
			client++
			s.ApplyBatch(client%64, deltas)
		}
	})
}

func BenchmarkApplyBatchPerEntryContended(b *testing.B) {
	s := NewSharded(SelectMostRecent, 16)
	deltas := benchDeltas(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		client := 0
		for pb.Next() {
			client++
			for _, d := range deltas {
				if d.Remove {
					s.Remove(client%64, d.Doc)
				} else {
					e := d.Entry
					e.Client = client % 64
					s.Add(e)
				}
			}
		}
	})
}
