package index

import (
	"fmt"

	"baps/internal/intern"
)

// Mode selects the §2 index-update protocol.
type Mode int

const (
	// Immediate applies every browser-cache change to the proxy's index
	// at once: the proxy adds an item when it sends a document to the
	// browser, and the browser sends an invalidation message on every
	// eviction. The index is always exact.
	Immediate Mode = iota
	// Periodic batches changes at the browser and re-synchronizes the
	// proxy's view only after more than Threshold of the browser cache
	// has changed (the Fan et al. delay-threshold scheme the paper cites;
	// thresholds of 1–10 % cost only a small hit-ratio degradation).
	// Between flushes the index is stale: it can claim documents the
	// browser already evicted (false hits) and miss documents the
	// browser holds (lost sharing opportunities).
	Periodic
	// Batched coalesces changes like Periodic (same delay-threshold
	// trigger) but ships only the net per-document deltas instead of
	// re-sending the full directory — the §5 message-volume remedy. Index
	// staleness between flushes is identical to Periodic; only the bytes
	// and entries on the wire shrink.
	Batched
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Immediate:
		return "immediate"
	case Periodic:
		return "periodic"
	case Batched:
		return "batched"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a mode name as printed by String.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Immediate, Periodic, Batched} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("index: unknown mode %q", s)
}

// Publisher mediates one browser cache's updates to the shared Index under
// the configured protocol. It is not safe for concurrent use; the live
// browser agent owns one Publisher under its own lock, and the simulator is
// single-threaded per run.
type Publisher struct {
	idx       *Index
	client    int
	mode      Mode
	threshold float64 // fraction of resident docs changed before flush

	pendingAdd    map[intern.ID]Entry
	pendingRemove map[intern.ID]struct{}
	changes       int
	flushes       int

	// resident is the browser cache's document count as last reported by
	// OnInsert/OnEvict, so an externally triggered Flush can account a
	// Periodic full re-send without a fresh resident figure.
	resident int
	// §5 message-volume accounting: msgs counts protocol messages on the
	// (simulated) wire, entriesShipped the index entries they carried —
	// one entry per Immediate op, the full directory per Periodic flush,
	// only the net deltas per Batched flush.
	msgs           int64
	entriesShipped int64
}

// NewPublisher creates a publisher for client against idx. threshold is the
// changed fraction that triggers a periodic or batched flush (ignored for
// Immediate); it must be in (0, 1] for those modes.
func NewPublisher(idx *Index, client int, mode Mode, threshold float64) (*Publisher, error) {
	if idx == nil {
		return nil, fmt.Errorf("index: nil Index")
	}
	if (mode == Periodic || mode == Batched) && (threshold <= 0 || threshold > 1) {
		return nil, fmt.Errorf("index: %s threshold %g out of (0,1]", mode, threshold)
	}
	p := &Publisher{
		idx:       idx,
		client:    client,
		mode:      mode,
		threshold: threshold,
	}
	if mode != Immediate {
		// Immediate publishers never batch; with 10^6 browsers even two
		// empty maps apiece are ~100 MB of resident overhead.
		p.pendingAdd = make(map[intern.ID]Entry)
		p.pendingRemove = make(map[intern.ID]struct{})
	}
	return p, nil
}

// OnInsert records that the browser cached a document. resident is the
// browser cache's current document count, used for the periodic threshold.
func (p *Publisher) OnInsert(e Entry, resident int) {
	e.Client = p.client
	p.resident = resident
	if p.mode == Immediate {
		p.idx.Add(e)
		p.msgs++
		p.entriesShipped++
		return
	}
	delete(p.pendingRemove, e.Doc)
	p.pendingAdd[e.Doc] = e
	p.changes++
	p.maybeFlush(resident)
}

// OnEvict records that the browser evicted (or invalidated) a document.
func (p *Publisher) OnEvict(doc intern.ID, resident int) {
	p.resident = resident
	if p.mode == Immediate {
		p.idx.Remove(p.client, doc)
		p.msgs++
		p.entriesShipped++
		return
	}
	delete(p.pendingAdd, doc)
	p.pendingRemove[doc] = struct{}{}
	p.changes++
	p.maybeFlush(resident)
}

func (p *Publisher) maybeFlush(resident int) {
	if resident < 1 {
		resident = 1
	}
	if float64(p.changes) >= p.threshold*float64(resident) {
		p.Flush()
	}
}

// Flush applies all pending changes to the index immediately (the periodic
// re-sync message; also sent "when the path between the browser and the
// proxy is free").
func (p *Publisher) Flush() {
	if p.mode == Immediate || p.changes == 0 {
		return
	}
	p.idx.mu.Lock()
	for doc := range p.pendingRemove {
		p.idx.removeLocked(p.client, doc)
	}
	for _, e := range p.pendingAdd {
		p.idx.addLocked(e)
	}
	p.idx.mu.Unlock()
	p.msgs++
	if p.mode == Batched {
		// One batch message carrying only the net deltas.
		p.entriesShipped += int64(len(p.pendingAdd) + len(p.pendingRemove))
	} else {
		// Periodic re-sends the whole resident directory.
		r := p.resident
		if r < 1 {
			r = 1
		}
		p.entriesShipped += int64(r)
	}
	clear(p.pendingAdd)
	clear(p.pendingRemove)
	p.changes = 0
	p.flushes++
}

// Reset discards pending changes and counters and adopts a new periodic
// threshold, re-arming the publisher for a fresh replay over the same index.
func (p *Publisher) Reset(threshold float64) {
	clear(p.pendingAdd)
	clear(p.pendingRemove)
	p.changes = 0
	p.flushes = 0
	p.resident = 0
	p.msgs = 0
	p.entriesShipped = 0
	p.threshold = threshold
}

// Pending reports the number of unflushed changes.
func (p *Publisher) Pending() int { return p.changes }

// Flushes reports how many batched flushes have occurred.
func (p *Publisher) Flushes() int { return p.flushes }

// Messages reports the number of index-protocol messages the publisher has
// put on the (simulated) wire: one per Immediate op, one per Periodic or
// Batched flush.
func (p *Publisher) Messages() int64 { return p.msgs }

// EntriesShipped reports the total index entries those messages carried —
// the §5 overhead figure that separates the three protocols.
func (p *Publisher) EntriesShipped() int64 { return p.entriesShipped }

// Mode reports the configured protocol.
func (p *Publisher) Mode() Mode { return p.mode }
