package index

import (
	"sort"

	"baps/internal/intern"
)

// DefaultShards is the shard count NewSharded uses when given n <= 0.
const DefaultShards = 16

// Sharded is the live proxy's lock-striped browser directory: document
// state is split across n Index shards selected by document ID, so request
// goroutines touching different documents proceed without contending on a
// single directory lock. Client-level state (served counters, quarantine
// flags, per-client entry counts) lives in one clientTable shared by every
// shard, keeping quarantine and least-loaded selection globally consistent.
//
// The method surface mirrors Index; per-document operations cost one shard
// lock, client-level operations touch only the shared table, and whole-index
// operations (PruneExpired, DropClient, ResyncClient, Len) visit each shard
// in turn without a global lock.
type Sharded struct {
	strategy Strategy
	ct       *clientTable
	shards   []*Index
}

// NewSharded creates an empty sharded index with n shards (DefaultShards
// when n <= 0).
func NewSharded(strategy Strategy, n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded{
		strategy: strategy,
		ct:       newClientTable(),
		shards:   make([]*Index, n),
	}
	for i := range s.shards {
		s.shards[i] = newIndex(strategy, s.ct)
	}
	return s
}

func (s *Sharded) shard(doc intern.ID) *Index {
	return s.shards[uint32(doc)%uint32(len(s.shards))]
}

// ShardCount reports the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Add records (or refreshes) an entry.
func (s *Sharded) Add(e Entry) { s.shard(e.Doc).Add(e) }

// Remove deletes client's entry for doc, reporting whether it existed.
func (s *Sharded) Remove(client int, doc intern.ID) bool {
	return s.shard(doc).Remove(client, doc)
}

// Lookup returns all recorded holders of doc, sorted by client id.
func (s *Sharded) Lookup(doc intern.ID) []Entry { return s.shard(doc).Lookup(doc) }

// Select picks a holder for doc other than requester and accounts one
// served transfer to it.
func (s *Sharded) Select(doc intern.ID, requester int) (Entry, bool) {
	return s.shard(doc).Select(doc, requester)
}

// Ordered returns all holders of doc except requester in strategy order.
func (s *Sharded) Ordered(doc intern.ID, requester int) []Entry {
	return s.shard(doc).Ordered(doc, requester)
}

// OrderedAt is Ordered with TTL filtering at time now.
func (s *Sharded) OrderedAt(doc intern.ID, requester int, now float64) []Entry {
	return s.shard(doc).OrderedAt(doc, requester, now)
}

// AppendOrdered appends doc's candidates to buf in strategy order.
func (s *Sharded) AppendOrdered(buf []Entry, doc intern.ID, requester int, now float64) []Entry {
	return s.shard(doc).AppendOrdered(buf, doc, requester, now)
}

// OrderedQuarantined returns the quarantined holders of doc in strategy
// order.
func (s *Sharded) OrderedQuarantined(doc intern.ID, requester int) []Entry {
	return s.shard(doc).OrderedQuarantined(doc, requester)
}

// Quarantine shelves every entry of client across all shards in one step,
// returning the number of entries shelved.
func (s *Sharded) Quarantine(client int) int { return s.ct.setQuarantined(client, true) }

// Unquarantine re-admits client's entries, returning how many became
// visible again.
func (s *Sharded) Unquarantine(client int) int { return s.ct.setQuarantined(client, false) }

// Quarantined reports whether client is currently quarantined.
func (s *Sharded) Quarantined(client int) bool { return s.ct.isQuarantined(client) }

// QuarantinedEntries reports the total number of shelved entries.
func (s *Sharded) QuarantinedEntries() int { return s.ct.quarantinedEntries() }

// PruneExpired removes every expired entry across all shards.
func (s *Sharded) PruneExpired(now float64) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.PruneExpired(now)
	}
	return n
}

// AccountServe records that client served one peer transfer.
func (s *Sharded) AccountServe(client int) { s.ct.accountServe(client) }

// Served reports how many peer transfers client has been selected for.
func (s *Sharded) Served(client int) int64 { return s.ct.servedOf(client) }

// Has reports whether client is recorded as holding doc.
func (s *Sharded) Has(client int, doc intern.ID) bool { return s.shard(doc).Has(client, doc) }

// Get returns client's entry for doc.
func (s *Sharded) Get(client int, doc intern.ID) (Entry, bool) {
	return s.shard(doc).Get(client, doc)
}

// ClientDocs returns a copy of client's directory, sorted by document ID.
func (s *Sharded) ClientDocs(client int) []Entry {
	var out []Entry
	for _, sh := range s.shards {
		out = append(out, sh.ClientDocs(client)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// ForEachClientDoc calls fn for every document client holds, shard by
// shard. Each shard's lock is held read-side while it is walked; fn must be
// cheap and must not call back into the index.
func (s *Sharded) ForEachClientDoc(client int, fn func(doc intern.ID)) {
	for _, sh := range s.shards {
		sh.ForEachClientDoc(client, fn)
	}
}

// DropClient removes every entry for a departed client across all shards.
func (s *Sharded) DropClient(client int) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.dropEntries(client)
	}
	s.ct.drop(client)
	return n
}

// ResyncClient atomically-per-shard replaces client's directory with
// entries (the §2 periodic full update). Entries land in their document's
// shard; a concurrent reader may observe the resync mid-flight on other
// shards, matching the live system's message-at-a-time semantics.
func (s *Sharded) ResyncClient(client int, entries []Entry) {
	for _, sh := range s.shards {
		sh.dropEntries(client)
	}
	for _, e := range entries {
		e.Client = client
		s.shard(e.Doc).Add(e)
	}
}

// Len reports the total number of entries.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// ForEachDoc calls fn for every document with at least one recorded holder,
// shard by shard. Each shard's lock is held read-side while it is walked;
// fn must be cheap and must not call back into the index.
func (s *Sharded) ForEachDoc(fn func(doc intern.ID)) {
	for _, sh := range s.shards {
		sh.ForEachDoc(fn)
	}
}

// URLCount reports the number of distinct documents currently indexed.
func (s *Sharded) URLCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.URLCount()
	}
	return n
}
