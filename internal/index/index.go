// Package index implements the browser index file at the heart of the
// browsers-aware proxy server (paper §2): a directory, kept at the proxy, of
// every document cached in every connected client's browser cache.
//
// Each index item records the client machine id, the interned document ID
// (the live system additionally carries a 16-byte MD5 signature; URL ⇄ ID
// mapping lives in baps/internal/intern), the document size, and a
// version/time stamp. The package provides:
//
//   - Index: the exact directory, holders kept as compact client-sorted
//     slices in a dense by-document table, with pluggable holder-selection
//     strategies;
//   - Sharded: the live proxy's lock-striped variant — N Index shards
//     selected by document ID so concurrent request goroutines do not
//     serialize on one directory lock;
//   - Publisher: the two update protocols of §2 — immediate invalidation
//     (add on proxy→browser send, invalidation message on eviction) and
//     periodic batched re-synchronization (flush when more than a threshold
//     fraction of the browser cache changed, following the delay-threshold
//     study of Fan et al. the paper cites in §5);
//   - BloomIndex: the Summary-Cache-style compressed alternative with one
//     counting Bloom filter per client (§5's space-reduction discussion);
//   - space estimators for the §5 index-size analysis.
package index

import (
	"fmt"
	"sort"
	"sync"

	"baps/internal/bloom"
	"baps/internal/intern"
)

// Entry is one browser-index item.
type Entry struct {
	// Client is the holder's client id.
	Client int
	// Doc is the interned document ID.
	Doc intern.ID
	// Size is the cached body size in bytes.
	Size int64
	// Version is the document generation held by the client.
	Version int64
	// Stamp is the (simulated or wall) time the entry was recorded, in
	// seconds; it plays the paper's "time stamp of the file" role and
	// drives the most-recent holder-selection strategy.
	Stamp float64
	// Expire is the absolute time (same clock as Stamp) at which the
	// document's TTL — "provided by the data source", §2 — runs out.
	// Zero means no expiry. Expired entries are skipped by OrderedAt
	// and purged by PruneExpired.
	Expire float64
}

// expired reports whether the entry's TTL ran out at time now.
func (e Entry) expired(now float64) bool {
	return e.Expire != 0 && now >= e.Expire
}

// Strategy selects which holder serves a remote-browser hit when several
// clients cache the document.
type Strategy int

const (
	// SelectMostRecent picks the holder with the newest Stamp (most
	// likely still resident and fresh); ties break to the lowest client.
	SelectMostRecent Strategy = iota
	// SelectLeastLoaded picks the holder that has served the fewest
	// peer transfers, spreading upload load across browsers.
	SelectLeastLoaded
	// SelectFirst picks the lowest client id (deterministic, cheapest).
	SelectFirst
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SelectMostRecent:
		return "most-recent"
	case SelectLeastLoaded:
		return "least-loaded"
	case SelectFirst:
		return "first"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Index is the exact browser directory. Holders of each document are kept in
// a compact slice sorted by client id, indexed by the dense document ID — no
// per-lookup string hashing and no per-entry heap allocation. It is safe for
// concurrent use; the live proxy stripes the directory across several shards
// (see Sharded) while the simulator uses one Index single-threaded.
type Index struct {
	mu       sync.RWMutex
	strategy Strategy
	ct       *clientTable

	// byDoc[doc] lists the holders of doc, sorted by client id. Emptied
	// slices keep their capacity for reuse.
	byDoc   [][]Entry
	entries int // total entries in this index (shard)
	docs    int // documents with at least one holder
}

// New creates an empty index with the given holder-selection strategy.
func New(strategy Strategy) *Index {
	return newIndex(strategy, newClientTable())
}

func newIndex(strategy Strategy, ct *clientTable) *Index {
	return &Index{strategy: strategy, ct: ct}
}

// Grow pre-sizes the document table for IDs in [0, numDocs), sparing the
// hot path incremental growth. The simulator calls it with the trace's
// document count.
func (x *Index) Grow(numDocs int) {
	x.mu.Lock()
	if numDocs > len(x.byDoc) {
		grown := make([][]Entry, numDocs)
		copy(grown, x.byDoc)
		x.byDoc = grown
	}
	x.mu.Unlock()
}

func (x *Index) ensureDoc(doc intern.ID) {
	if int(doc) < len(x.byDoc) {
		return
	}
	if int(doc) < cap(x.byDoc) {
		x.byDoc = x.byDoc[:int(doc)+1]
		return
	}
	grown := make([][]Entry, int(doc)+1, max(2*cap(x.byDoc), int(doc)+1))
	copy(grown, x.byDoc)
	x.byDoc = grown
}

// holderPos returns the position of client within the sorted holder list,
// and whether it is present.
func holderPos(hs []Entry, client int) (int, bool) {
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid].Client < client {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(hs) && hs[lo].Client == client
}

// Add records (or refreshes) an entry.
func (x *Index) Add(e Entry) {
	x.mu.Lock()
	x.addLocked(e)
	x.mu.Unlock()
}

func (x *Index) addLocked(e Entry) {
	x.ensureDoc(e.Doc)
	hs := x.byDoc[e.Doc]
	pos, found := holderPos(hs, e.Client)
	if found {
		hs[pos] = e
		return
	}
	if len(hs) == 0 {
		x.docs++
	}
	hs = append(hs, Entry{})
	copy(hs[pos+1:], hs[pos:])
	hs[pos] = e
	x.byDoc[e.Doc] = hs
	x.entries++
	x.ct.addDocs(e.Client, 1)
}

// Remove deletes client's entry for doc (the §2 invalidation message),
// reporting whether it existed.
func (x *Index) Remove(client int, doc intern.ID) bool {
	x.mu.Lock()
	ok := x.removeLocked(client, doc)
	x.mu.Unlock()
	return ok
}

func (x *Index) removeLocked(client int, doc intern.ID) bool {
	if doc < 0 || int(doc) >= len(x.byDoc) {
		return false
	}
	hs := x.byDoc[doc]
	pos, found := holderPos(hs, client)
	if !found {
		return false
	}
	copy(hs[pos:], hs[pos+1:])
	hs[len(hs)-1] = Entry{}
	x.byDoc[doc] = hs[:len(hs)-1]
	if len(hs) == 1 {
		x.docs--
	}
	x.entries--
	x.ct.addDocs(client, -1)
	return true
}

// Lookup returns all recorded holders of doc, sorted by client id. The
// returned slice is a copy.
func (x *Index) Lookup(doc intern.ID) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if doc < 0 || int(doc) >= len(x.byDoc) {
		return nil
	}
	return append([]Entry(nil), x.byDoc[doc]...)
}

// Select picks a holder for doc other than requester, per the index's
// strategy, and accounts one served transfer to it. ok is false when no
// other client holds the document.
func (x *Index) Select(doc intern.ID, requester int) (Entry, bool) {
	x.mu.RLock()
	x.ct.mu.RLock()
	var best Entry
	found := false
	if doc >= 0 && int(doc) < len(x.byDoc) {
		for _, e := range x.byDoc[doc] {
			if e.Client == requester || x.ct.quarLocked(e.Client) {
				continue
			}
			if !found {
				best = e
				found = true
				continue
			}
			if x.better(e, best) {
				best = e
			}
		}
	}
	x.ct.mu.RUnlock()
	x.mu.RUnlock()
	if found {
		x.ct.accountServe(best.Client)
	}
	return best, found
}

// better reports whether a should be preferred over b under the strategy.
// Callers must hold ct.mu (read suffices) for SelectLeastLoaded.
func (x *Index) better(a, b Entry) bool {
	switch x.strategy {
	case SelectMostRecent:
		if a.Stamp != b.Stamp {
			return a.Stamp > b.Stamp
		}
		return a.Client < b.Client
	case SelectLeastLoaded:
		la, lb := x.ct.servedLocked(a.Client), x.ct.servedLocked(b.Client)
		if la != lb {
			return la < lb
		}
		return a.Client < b.Client
	default: // SelectFirst
		return a.Client < b.Client
	}
}

// Ordered returns all holders of doc except requester, sorted by the
// index's strategy preference (best candidate first). Unlike Select it does
// not account a served transfer; callers that contact a candidate confirm
// with AccountServe. This supports the stale-entry retry loop: under the
// periodic update protocol an index entry may name a browser that already
// evicted the document, and the proxy then tries the next candidate.
func (x *Index) Ordered(doc intern.ID, requester int) []Entry {
	return x.OrderedAt(doc, requester, 0)
}

// OrderedAt is Ordered with TTL filtering: entries whose Expire lies at or
// before now are omitted (now == 0 disables filtering, matching Ordered).
// Quarantined clients' entries are omitted; OrderedQuarantined lists them.
func (x *Index) OrderedAt(doc intern.ID, requester int, now float64) []Entry {
	return x.appendOrdered(nil, doc, requester, now, false)
}

// AppendOrdered is the allocation-free OrderedAt: candidates are appended to
// buf (normally a reused scratch slice with spare capacity) and the extended
// slice is returned. The simulator's remote-lookup path calls this once per
// proxy miss.
func (x *Index) AppendOrdered(buf []Entry, doc intern.ID, requester int, now float64) []Entry {
	return x.appendOrdered(buf, doc, requester, now, false)
}

// OrderedQuarantined returns the quarantined holders of doc (excluding
// requester), sorted by strategy preference. The proxy uses it to pick
// half-open breaker probes: a quarantined peer is skipped by OrderedAt but
// may be probed once its breaker cooldown elapses.
func (x *Index) OrderedQuarantined(doc intern.ID, requester int) []Entry {
	return x.appendOrdered(nil, doc, requester, 0, true)
}

func (x *Index) appendOrdered(buf []Entry, doc intern.ID, requester int, now float64, quarantined bool) []Entry {
	x.mu.RLock()
	x.ct.mu.RLock()
	start := len(buf)
	if doc >= 0 && int(doc) < len(x.byDoc) {
		for _, e := range x.byDoc[doc] {
			if e.Client == requester || x.ct.quarLocked(e.Client) != quarantined {
				continue
			}
			if now != 0 && e.expired(now) {
				continue
			}
			buf = append(buf, e)
		}
	}
	// Insertion sort by strategy preference: holder lists are short, the
	// input is already client-sorted (better's final tie-break), and
	// unlike sort.Slice this allocates nothing.
	out := buf[start:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && x.better(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	x.ct.mu.RUnlock()
	x.mu.RUnlock()
	return buf
}

// Quarantine shelves every entry of client in one step: the entries stay
// recorded (and are restored wholesale by Unquarantine) but are invisible to
// holder selection. It returns the number of entries shelved. This replaces
// the one-URL-at-a-time Remove death spiral when a peer's circuit breaker
// trips.
func (x *Index) Quarantine(client int) int {
	return x.ct.setQuarantined(client, true)
}

// Unquarantine re-admits client's entries in one step, returning how many
// became visible again.
func (x *Index) Unquarantine(client int) int {
	return x.ct.setQuarantined(client, false)
}

// Quarantined reports whether client is currently quarantined.
func (x *Index) Quarantined(client int) bool {
	return x.ct.isQuarantined(client)
}

// QuarantinedEntries reports the total number of shelved entries across all
// quarantined clients (a /stats gauge).
func (x *Index) QuarantinedEntries() int {
	return x.ct.quarantinedEntries()
}

// PruneExpired removes every entry whose TTL ran out at time now, returning
// the number removed. The proxy runs this as periodic housekeeping.
func (x *Index) PruneExpired(now float64) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for doc := range x.byDoc {
		hs := x.byDoc[doc]
		kept := hs[:0]
		for _, e := range hs {
			if e.expired(now) {
				x.ct.addDocs(e.Client, -1)
				n++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) < len(hs) {
			for i := len(kept); i < len(hs); i++ {
				hs[i] = Entry{}
			}
			x.byDoc[doc] = kept
			x.entries -= len(hs) - len(kept)
			if len(kept) == 0 {
				x.docs--
			}
		}
	}
	return n
}

// AccountServe records that client served one peer transfer (used by the
// least-loaded strategy).
func (x *Index) AccountServe(client int) {
	x.ct.accountServe(client)
}

// Served reports how many peer transfers client has been selected for.
func (x *Index) Served(client int) int64 {
	return x.ct.servedOf(client)
}

// Has reports whether client is recorded as holding doc.
func (x *Index) Has(client int, doc intern.ID) bool {
	_, ok := x.Get(client, doc)
	return ok
}

// Get returns client's entry for doc.
func (x *Index) Get(client int, doc intern.ID) (Entry, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	if doc < 0 || int(doc) >= len(x.byDoc) {
		return Entry{}, false
	}
	hs := x.byDoc[doc]
	pos, found := holderPos(hs, client)
	if !found {
		return Entry{}, false
	}
	return hs[pos], true
}

// ClientDocs returns a copy of client's directory, sorted by document ID.
func (x *Index) ClientDocs(client int) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []Entry
	for doc := range x.byDoc {
		if pos, found := holderPos(x.byDoc[doc], client); found {
			out = append(out, x.byDoc[doc][pos])
		}
	}
	return out
}

// ForEachClientDoc calls fn for every document client currently holds. The
// index lock is held read-side during the walk; fn must be cheap and must
// not call back into the index. Allocation-free, unlike ClientDocs.
func (x *Index) ForEachClientDoc(client int, fn func(doc intern.ID)) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	for doc := range x.byDoc {
		if _, found := holderPos(x.byDoc[doc], client); found {
			fn(intern.ID(doc))
		}
	}
}

// dropEntries removes every entry of client, leaving served/quarantine state
// untouched. Returns the number of entries removed.
func (x *Index) dropEntries(client int) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for doc := range x.byDoc {
		hs := x.byDoc[doc]
		pos, found := holderPos(hs, client)
		if !found {
			continue
		}
		copy(hs[pos:], hs[pos+1:])
		hs[len(hs)-1] = Entry{}
		x.byDoc[doc] = hs[:len(hs)-1]
		if len(hs) == 1 {
			x.docs--
		}
		x.entries--
		n++
	}
	if n > 0 {
		x.ct.addDocs(client, int64(-n))
	}
	return n
}

// DropClient removes every entry for a departed client, returning how many
// entries were removed.
func (x *Index) DropClient(client int) int {
	n := x.dropEntries(client)
	x.ct.drop(client)
	return n
}

// ResyncClient atomically replaces client's directory with entries (the §2
// periodic full update).
func (x *Index) ResyncClient(client int, entries []Entry) {
	x.dropEntries(client)
	x.mu.Lock()
	for _, e := range entries {
		e.Client = client
		x.addLocked(e)
	}
	x.mu.Unlock()
}

// Len reports the total number of entries.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.entries
}

// ForEachDoc calls fn for every document with at least one recorded holder.
// The index lock is held read-side for the whole walk; fn must be cheap and
// must not call back into the index. The federation layer uses it to build
// Bloom digests of the aggregate directory.
func (x *Index) ForEachDoc(fn func(doc intern.ID)) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	for doc, hs := range x.byDoc {
		if len(hs) > 0 {
			fn(intern.ID(doc))
		}
	}
}

// URLCount reports the number of distinct documents currently indexed.
func (x *Index) URLCount() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.docs
}

// Reset empties the index in place, retaining the document table and holder
// slice capacity, so sweep workers can replay many configurations without
// re-growing. Client state (served counters, quarantine flags) resets too.
func (x *Index) Reset() {
	x.mu.Lock()
	for doc := range x.byDoc {
		hs := x.byDoc[doc]
		for i := range hs {
			hs[i] = Entry{}
		}
		x.byDoc[doc] = hs[:0]
	}
	x.entries = 0
	x.docs = 0
	x.mu.Unlock()
	x.ct.reset()
}

// SpaceEstimate models the §5 storage analysis for an exact index: each
// entry costs an MD5 URL signature (16 bytes) plus bookkeeping (client id,
// size, stamp ≈ 16 bytes more). The paper's example — 100 clients × 1 K
// pages — lands at a few megabytes.
func SpaceEstimate(entries int) int64 {
	const perEntry = 16 /* MD5 */ + 16 /* client, size, stamp */
	return int64(entries) * perEntry
}

// BloomSpaceEstimate models the compressed alternative: one counting Bloom
// filter per client sized at bitsPerDoc counters per cached document (Summary
// Cache recommends ≈16 bits/doc at 4-bit counters; with our 8-bit counters
// the same load factor costs 2 bytes per bit position ÷ 8 … reported here
// simply as counters × 1 byte).
func BloomSpaceEstimate(clients, docsPerClient, countersPerDoc int) int64 {
	return int64(clients) * int64(docsPerClient) * int64(countersPerDoc)
}

// BloomIndex is the compressed per-client index: membership is approximate
// (false positives possible, false negatives impossible for synced content).
// It implements the same Add/Remove/Candidates surface the simulator's
// ablation uses to price wasted peer probes against index-space savings.
type BloomIndex struct {
	mu       sync.RWMutex
	filters  map[int]*bloom.Counting
	counters uint64
	k        int
}

// NewBloomIndex creates a Bloom index whose per-client filters have
// countersPerClient counters and k hash functions.
func NewBloomIndex(countersPerClient uint64, k int) (*BloomIndex, error) {
	if countersPerClient == 0 || k <= 0 {
		return nil, fmt.Errorf("index: invalid bloom parameters (m=%d k=%d)", countersPerClient, k)
	}
	return &BloomIndex{filters: make(map[int]*bloom.Counting), counters: countersPerClient, k: k}, nil
}

func (b *BloomIndex) filter(client int) *bloom.Counting {
	f, ok := b.filters[client]
	if !ok {
		f, _ = bloom.NewCounting(b.counters, b.k)
		b.filters[client] = f
	}
	return f
}

// Add records that client caches url.
func (b *BloomIndex) Add(client int, url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter(client).Add(url)
}

// Remove withdraws one insertion of url for client.
func (b *BloomIndex) Remove(client int, url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter(client).Remove(url)
}

// Candidates returns the clients (≠ requester) whose filters report url,
// sorted ascending. Some may be false positives.
func (b *BloomIndex) Candidates(url string, requester int) []int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []int
	for c, f := range b.filters {
		if c == requester {
			continue
		}
		if f.Contains(url) {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// SizeBytes reports the total filter footprint.
func (b *BloomIndex) SizeBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var n int64
	for _, f := range b.filters {
		n += f.SizeBytes()
	}
	return n
}
