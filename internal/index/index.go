// Package index implements the browser index file at the heart of the
// browsers-aware proxy server (paper §2): a directory, kept at the proxy, of
// every document cached in every connected client's browser cache.
//
// Each index item records the client machine id, the document URL (the live
// system additionally carries a 16-byte MD5 signature), the document size,
// and a version/time stamp. The package provides:
//
//   - Index: the exact directory with by-URL and by-client views and
//     pluggable holder-selection strategies;
//   - Publisher: the two update protocols of §2 — immediate invalidation
//     (add on proxy→browser send, invalidation message on eviction) and
//     periodic batched re-synchronization (flush when more than a threshold
//     fraction of the browser cache changed, following the delay-threshold
//     study of Fan et al. the paper cites in §5);
//   - BloomIndex: the Summary-Cache-style compressed alternative with one
//     counting Bloom filter per client (§5's space-reduction discussion);
//   - space estimators for the §5 index-size analysis.
package index

import (
	"fmt"
	"sort"
	"sync"

	"baps/internal/bloom"
)

// Entry is one browser-index item.
type Entry struct {
	// Client is the holder's client id.
	Client int
	// URL is the document identifier.
	URL string
	// Size is the cached body size in bytes.
	Size int64
	// Version is the document generation held by the client.
	Version int64
	// Stamp is the (simulated or wall) time the entry was recorded, in
	// seconds; it plays the paper's "time stamp of the file" role and
	// drives the most-recent holder-selection strategy.
	Stamp float64
	// Expire is the absolute time (same clock as Stamp) at which the
	// document's TTL — "provided by the data source", §2 — runs out.
	// Zero means no expiry. Expired entries are skipped by OrderedAt
	// and purged by PruneExpired.
	Expire float64
}

// expired reports whether the entry's TTL ran out at time now.
func (e Entry) expired(now float64) bool {
	return e.Expire != 0 && now >= e.Expire
}

// Strategy selects which holder serves a remote-browser hit when several
// clients cache the document.
type Strategy int

const (
	// SelectMostRecent picks the holder with the newest Stamp (most
	// likely still resident and fresh); ties break to the lowest client.
	SelectMostRecent Strategy = iota
	// SelectLeastLoaded picks the holder that has served the fewest
	// peer transfers, spreading upload load across browsers.
	SelectLeastLoaded
	// SelectFirst picks the lowest client id (deterministic, cheapest).
	SelectFirst
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SelectMostRecent:
		return "most-recent"
	case SelectLeastLoaded:
		return "least-loaded"
	case SelectFirst:
		return "first"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Index is the exact browser directory. It is safe for concurrent use; the
// live proxy shares one Index across request goroutines, while the simulator
// uses it single-threaded.
type Index struct {
	mu       sync.RWMutex
	byURL    map[string]map[int]Entry
	byClient map[int]map[string]Entry
	served   map[int]int64 // peer transfers served, for SelectLeastLoaded
	strategy Strategy
	// quarantined clients keep their entries but are skipped by holder
	// selection (Ordered/OrderedAt/Select) until unquarantined — the bulk
	// shelve/restore the proxy's circuit breaker drives on peer churn.
	quarantined map[int]bool
}

// New creates an empty index with the given holder-selection strategy.
func New(strategy Strategy) *Index {
	return &Index{
		byURL:       make(map[string]map[int]Entry),
		byClient:    make(map[int]map[string]Entry),
		served:      make(map[int]int64),
		strategy:    strategy,
		quarantined: make(map[int]bool),
	}
}

// Add records (or refreshes) an entry.
func (x *Index) Add(e Entry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.addLocked(e)
}

func (x *Index) addLocked(e Entry) {
	holders, ok := x.byURL[e.URL]
	if !ok {
		holders = make(map[int]Entry)
		x.byURL[e.URL] = holders
	}
	holders[e.Client] = e
	docs, ok := x.byClient[e.Client]
	if !ok {
		docs = make(map[string]Entry)
		x.byClient[e.Client] = docs
	}
	docs[e.URL] = e
}

// Remove deletes client's entry for url (the §2 invalidation message),
// reporting whether it existed.
func (x *Index) Remove(client int, url string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.removeLocked(client, url)
}

func (x *Index) removeLocked(client int, url string) bool {
	holders, ok := x.byURL[url]
	if !ok {
		return false
	}
	if _, ok := holders[client]; !ok {
		return false
	}
	delete(holders, client)
	if len(holders) == 0 {
		delete(x.byURL, url)
	}
	if docs, ok := x.byClient[client]; ok {
		delete(docs, url)
		if len(docs) == 0 {
			delete(x.byClient, client)
		}
	}
	return true
}

// Lookup returns all recorded holders of url, sorted by client id. The
// returned slice is a copy.
func (x *Index) Lookup(url string) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	holders := x.byURL[url]
	out := make([]Entry, 0, len(holders))
	for _, e := range holders {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// Select picks a holder for url other than requester, per the index's
// strategy, and accounts one served transfer to it. ok is false when no
// other client holds the document.
func (x *Index) Select(url string, requester int) (Entry, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	holders := x.byURL[url]
	var best Entry
	found := false
	for _, e := range holders {
		if e.Client == requester || x.quarantined[e.Client] {
			continue
		}
		if !found {
			best = e
			found = true
			continue
		}
		if x.better(e, best) {
			best = e
		}
	}
	if found {
		x.served[best.Client]++
	}
	return best, found
}

// better reports whether a should be preferred over b under the strategy.
func (x *Index) better(a, b Entry) bool {
	switch x.strategy {
	case SelectMostRecent:
		if a.Stamp != b.Stamp {
			return a.Stamp > b.Stamp
		}
		return a.Client < b.Client
	case SelectLeastLoaded:
		la, lb := x.served[a.Client], x.served[b.Client]
		if la != lb {
			return la < lb
		}
		return a.Client < b.Client
	default: // SelectFirst
		return a.Client < b.Client
	}
}

// Ordered returns all holders of url except requester, sorted by the
// index's strategy preference (best candidate first). Unlike Select it does
// not account a served transfer; callers that contact a candidate confirm
// with AccountServe. This supports the stale-entry retry loop: under the
// periodic update protocol an index entry may name a browser that already
// evicted the document, and the proxy then tries the next candidate.
func (x *Index) Ordered(url string, requester int) []Entry {
	return x.OrderedAt(url, requester, 0)
}

// OrderedAt is Ordered with TTL filtering: entries whose Expire lies at or
// before now are omitted (now == 0 disables filtering, matching Ordered).
// Quarantined clients' entries are omitted; OrderedQuarantined lists them.
func (x *Index) OrderedAt(url string, requester int, now float64) []Entry {
	return x.orderedAt(url, requester, now, false)
}

// OrderedQuarantined returns the quarantined holders of url (excluding
// requester), sorted by strategy preference. The proxy uses it to pick
// half-open breaker probes: a quarantined peer is skipped by OrderedAt but
// may be probed once its breaker cooldown elapses.
func (x *Index) OrderedQuarantined(url string, requester int) []Entry {
	return x.orderedAt(url, requester, 0, true)
}

func (x *Index) orderedAt(url string, requester int, now float64, quarantined bool) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	holders := x.byURL[url]
	out := make([]Entry, 0, len(holders))
	for _, e := range holders {
		if e.Client == requester || x.quarantined[e.Client] != quarantined {
			continue
		}
		if now != 0 && e.expired(now) {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return x.better(out[i], out[j]) })
	return out
}

// Quarantine shelves every entry of client in one step: the entries stay
// recorded (and are restored wholesale by Unquarantine) but are invisible to
// holder selection. It returns the number of entries shelved. This replaces
// the one-URL-at-a-time Remove death spiral when a peer's circuit breaker
// trips.
func (x *Index) Quarantine(client int) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.quarantined[client] = true
	return len(x.byClient[client])
}

// Unquarantine re-admits client's entries in one step, returning how many
// became visible again.
func (x *Index) Unquarantine(client int) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	delete(x.quarantined, client)
	return len(x.byClient[client])
}

// Quarantined reports whether client is currently quarantined.
func (x *Index) Quarantined(client int) bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.quarantined[client]
}

// QuarantinedEntries reports the total number of shelved entries across all
// quarantined clients (a /stats gauge).
func (x *Index) QuarantinedEntries() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for client := range x.quarantined {
		n += len(x.byClient[client])
	}
	return n
}

// PruneExpired removes every entry whose TTL ran out at time now, returning
// the number removed. The proxy runs this as periodic housekeeping.
func (x *Index) PruneExpired(now float64) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for url, holders := range x.byURL {
		for client, e := range holders {
			if e.expired(now) {
				x.removeLocked(client, url)
				n++
			}
		}
	}
	return n
}

// AccountServe records that client served one peer transfer (used by the
// least-loaded strategy).
func (x *Index) AccountServe(client int) {
	x.mu.Lock()
	x.served[client]++
	x.mu.Unlock()
}

// Served reports how many peer transfers client has been selected for.
func (x *Index) Served(client int) int64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.served[client]
}

// Has reports whether client is recorded as holding url.
func (x *Index) Has(client int, url string) bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	_, ok := x.byURL[url][client]
	return ok
}

// Get returns client's entry for url.
func (x *Index) Get(client int, url string) (Entry, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	e, ok := x.byURL[url][client]
	return e, ok
}

// ClientDocs returns a copy of client's directory, sorted by URL.
func (x *Index) ClientDocs(client int) []Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	docs := x.byClient[client]
	out := make([]Entry, 0, len(docs))
	for _, e := range docs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// DropClient removes every entry for a departed client, returning how many
// entries were removed.
func (x *Index) DropClient(client int) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	docs := x.byClient[client]
	n := len(docs)
	for url := range docs {
		holders := x.byURL[url]
		delete(holders, client)
		if len(holders) == 0 {
			delete(x.byURL, url)
		}
	}
	delete(x.byClient, client)
	delete(x.served, client)
	delete(x.quarantined, client)
	return n
}

// ResyncClient atomically replaces client's directory with entries (the §2
// periodic full update).
func (x *Index) ResyncClient(client int, entries []Entry) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for url := range x.byClient[client] {
		holders := x.byURL[url]
		delete(holders, client)
		if len(holders) == 0 {
			delete(x.byURL, url)
		}
	}
	delete(x.byClient, client)
	for _, e := range entries {
		e.Client = client
		x.addLocked(e)
	}
}

// Len reports the total number of entries.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for _, docs := range x.byClient {
		n += len(docs)
	}
	return n
}

// URLCount reports the number of distinct indexed URLs.
func (x *Index) URLCount() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.byURL)
}

// SpaceEstimate models the §5 storage analysis for an exact index: each
// entry costs an MD5 URL signature (16 bytes) plus bookkeeping (client id,
// size, stamp ≈ 16 bytes more). The paper's example — 100 clients × 1 K
// pages — lands at a few megabytes.
func SpaceEstimate(entries int) int64 {
	const perEntry = 16 /* MD5 */ + 16 /* client, size, stamp */
	return int64(entries) * perEntry
}

// BloomSpaceEstimate models the compressed alternative: one counting Bloom
// filter per client sized at bitsPerDoc counters per cached document (Summary
// Cache recommends ≈16 bits/doc at 4-bit counters; with our 8-bit counters
// the same load factor costs 2 bytes per bit position ÷ 8 … reported here
// simply as counters × 1 byte).
func BloomSpaceEstimate(clients, docsPerClient, countersPerDoc int) int64 {
	return int64(clients) * int64(docsPerClient) * int64(countersPerDoc)
}

// BloomIndex is the compressed per-client index: membership is approximate
// (false positives possible, false negatives impossible for synced content).
// It implements the same Add/Remove/Candidates surface the simulator's
// ablation uses to price wasted peer probes against index-space savings.
type BloomIndex struct {
	mu       sync.RWMutex
	filters  map[int]*bloom.Counting
	counters uint64
	k        int
}

// NewBloomIndex creates a Bloom index whose per-client filters have
// countersPerClient counters and k hash functions.
func NewBloomIndex(countersPerClient uint64, k int) (*BloomIndex, error) {
	if countersPerClient == 0 || k <= 0 {
		return nil, fmt.Errorf("index: invalid bloom parameters (m=%d k=%d)", countersPerClient, k)
	}
	return &BloomIndex{filters: make(map[int]*bloom.Counting), counters: countersPerClient, k: k}, nil
}

func (b *BloomIndex) filter(client int) *bloom.Counting {
	f, ok := b.filters[client]
	if !ok {
		f, _ = bloom.NewCounting(b.counters, b.k)
		b.filters[client] = f
	}
	return f
}

// Add records that client caches url.
func (b *BloomIndex) Add(client int, url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter(client).Add(url)
}

// Remove withdraws one insertion of url for client.
func (b *BloomIndex) Remove(client int, url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter(client).Remove(url)
}

// Candidates returns the clients (≠ requester) whose filters report url,
// sorted ascending. Some may be false positives.
func (b *BloomIndex) Candidates(url string, requester int) []int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []int
	for c, f := range b.filters {
		if c == requester {
			continue
		}
		if f.Contains(url) {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// SizeBytes reports the total filter footprint.
func (b *BloomIndex) SizeBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var n int64
	for _, f := range b.filters {
		n += f.SizeBytes()
	}
	return n
}
