package index

// Delta is one incremental directory change inside a batch: an upsert of the
// embedded entry, or (Remove) the withdrawal of the entry's document. Batches
// of deltas are the wire unit of the batched index-update protocol: a browser
// coalesces its cache churn locally and ships only the net changes, instead
// of one message per change (Immediate) or the full directory (Periodic).
type Delta struct {
	Entry
	Remove bool
}

// ApplyBatch applies a client's deltas under a single lock acquisition, in
// order. Entry.Client is overwritten with client on every delta, so a batch
// can only ever mutate its sender's directory.
func (x *Index) ApplyBatch(client int, deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	x.mu.Lock()
	for _, d := range deltas {
		if d.Remove {
			x.removeLocked(client, d.Doc)
		} else {
			e := d.Entry
			e.Client = client
			x.addLocked(e)
		}
	}
	x.mu.Unlock()
}

// ApplyBatch applies a client's deltas with one lock acquisition per shard:
// each shard's group is applied in batch order under a single Lock, instead
// of per-entry Add/Remove round trips through the shard mutex. Deltas for
// different documents land on different shards, so a concurrent reader can
// observe the batch partially applied across shards — the same visibility the
// one-message-at-a-time protocols already have.
func (s *Sharded) ApplyBatch(client int, deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	for si, sh := range s.shards {
		first := true
		for _, d := range deltas {
			if int(uint32(d.Doc)%uint32(len(s.shards))) != si {
				continue
			}
			if first {
				sh.mu.Lock()
				first = false
			}
			if d.Remove {
				sh.removeLocked(client, d.Doc)
			} else {
				e := d.Entry
				e.Client = client
				sh.addLocked(e)
			}
		}
		if !first {
			sh.mu.Unlock()
		}
	}
}
