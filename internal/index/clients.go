package index

import "sync"
import "sync/atomic"

// clientTable holds the per-client state of the browser index — served
// transfer counts (least-loaded strategy), quarantine flags, and entry
// counts. The state is client-level, not document-level, so a sharded index
// shares one clientTable across all shards: quarantining a client hides its
// entries in every shard, and the served counters keep least-loaded
// selection globally consistent instead of per-shard.
//
// Locking: mu guards slice growth. Element reads and writes use atomics
// under mu.RLock so concurrent holders (request goroutines sorting
// candidates while another accounts a serve) never race. When both an index
// shard lock and the clientTable lock are held, the shard lock is always
// acquired first.
type clientTable struct {
	mu          sync.RWMutex
	served      []int64
	quarantined []int32 // atomic bools
	docCount    []int64 // index entries per client, across all shards
}

func newClientTable() *clientTable { return &clientTable{} }

// ensure grows the state slices to cover client. Callers must not hold mu.
func (ct *clientTable) ensure(client int) {
	ct.mu.Lock()
	ct.ensureLocked(client)
	ct.mu.Unlock()
}

func (ct *clientTable) ensureLocked(client int) {
	if client < len(ct.served) {
		return
	}
	n := client + 1
	// Extend in place while capacity lasts: clients joining in ascending
	// order must not trigger a reallocation (let alone a doubling) each.
	// The capacity region of a made slice is zeroed and never written past
	// len, so the extension starts out correctly zero.
	if n <= cap(ct.served) {
		ct.served = ct.served[:n]
		ct.docCount = ct.docCount[:n]
		ct.quarantined = ct.quarantined[:n]
		return
	}
	newcap := max(2*cap(ct.served), n)
	grow := func(s []int64) []int64 {
		g := make([]int64, n, newcap)
		copy(g, s)
		return g
	}
	ct.served = grow(ct.served)
	ct.docCount = grow(ct.docCount)
	q := make([]int32, n, newcap)
	copy(q, ct.quarantined)
	ct.quarantined = q
}

// addDocs adjusts client's entry count by delta.
func (ct *clientTable) addDocs(client int, delta int64) {
	ct.mu.RLock()
	if client < len(ct.docCount) {
		atomic.AddInt64(&ct.docCount[client], delta)
		ct.mu.RUnlock()
		return
	}
	ct.mu.RUnlock()
	ct.ensure(client)
	ct.mu.RLock()
	atomic.AddInt64(&ct.docCount[client], delta)
	ct.mu.RUnlock()
}

func (ct *clientTable) docsOf(client int) int64 {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	if client < 0 || client >= len(ct.docCount) {
		return 0
	}
	return atomic.LoadInt64(&ct.docCount[client])
}

func (ct *clientTable) accountServe(client int) {
	ct.mu.RLock()
	if client < len(ct.served) {
		atomic.AddInt64(&ct.served[client], 1)
		ct.mu.RUnlock()
		return
	}
	ct.mu.RUnlock()
	ct.ensure(client)
	ct.mu.RLock()
	atomic.AddInt64(&ct.served[client], 1)
	ct.mu.RUnlock()
}

func (ct *clientTable) servedOf(client int) int64 {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.servedLocked(client)
}

// servedLocked requires mu held (read or write).
func (ct *clientTable) servedLocked(client int) int64 {
	if client < 0 || client >= len(ct.served) {
		return 0
	}
	return atomic.LoadInt64(&ct.served[client])
}

// quarLocked requires mu held (read or write).
func (ct *clientTable) quarLocked(client int) bool {
	if client < 0 || client >= len(ct.quarantined) {
		return false
	}
	return atomic.LoadInt32(&ct.quarantined[client]) != 0
}

func (ct *clientTable) isQuarantined(client int) bool {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.quarLocked(client)
}

// setQuarantined flips client's flag and returns its current entry count.
func (ct *clientTable) setQuarantined(client int, v bool) int {
	ct.mu.RLock()
	if client < len(ct.quarantined) {
		var f int32
		if v {
			f = 1
		}
		atomic.StoreInt32(&ct.quarantined[client], f)
		n := atomic.LoadInt64(&ct.docCount[client])
		ct.mu.RUnlock()
		return int(n)
	}
	ct.mu.RUnlock()
	if !v {
		return 0 // never tracked: nothing to restore
	}
	ct.ensure(client)
	return ct.setQuarantined(client, v)
}

// quarantinedEntries sums the entry counts of all quarantined clients.
func (ct *clientTable) quarantinedEntries() int {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	var n int64
	for c := range ct.quarantined {
		if atomic.LoadInt32(&ct.quarantined[c]) != 0 {
			n += atomic.LoadInt64(&ct.docCount[c])
		}
	}
	return int(n)
}

// drop zeroes all state for a departed client.
func (ct *clientTable) drop(client int) {
	ct.mu.RLock()
	if client < len(ct.served) {
		atomic.StoreInt64(&ct.served[client], 0)
		atomic.StoreInt32(&ct.quarantined[client], 0)
		atomic.StoreInt64(&ct.docCount[client], 0)
	}
	ct.mu.RUnlock()
}

// reset empties the table in place for reuse.
func (ct *clientTable) reset() {
	ct.mu.Lock()
	for i := range ct.served {
		ct.served[i] = 0
		ct.quarantined[i] = 0
		ct.docCount[i] = 0
	}
	ct.mu.Unlock()
}
