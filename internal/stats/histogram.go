package stats

import (
	"math"
	"sort"
)

// Histogram is a fixed-layout log-scale histogram for positive values
// (latencies in seconds here): 40 buckets per decade across 12 decades
// starting at 1 µs. It supports streaming insertion and quantile queries
// without retaining samples, so the simulator can report latency percentiles
// over millions of requests at O(1) memory.
type Histogram struct {
	counts [decades * bucketsPerDecade]int64
	under  int64 // below the first bucket
	over   int64 // above the last bucket
	n      int64
	sum    float64
	max    float64
}

const (
	bucketsPerDecade = 40
	decades          = 12
	histMin          = 1e-6
)

// Add records one value. Non-positive values land in the underflow bucket.
func (h *Histogram) Add(x float64) {
	h.n++
	if x > 0 {
		h.sum += x
	}
	if x > h.max {
		h.max = x
	}
	if x < histMin {
		h.under++
		return
	}
	idx := int(math.Log10(x/histMin) * bucketsPerDecade)
	if idx >= len(h.counts) {
		h.over++
		return
	}
	h.counts[idx]++
}

// N reports the number of recorded values.
func (h *Histogram) N() int64 { return h.n }

// Reset zeroes the histogram in place, so sweep workers can reuse one
// histogram per run instead of allocating a fresh bucket array.
func (h *Histogram) Reset() {
	clear(h.counts[:])
	h.under, h.over, h.n = 0, 0, 0
	h.sum, h.max = 0, 0
}

// Mean reports the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max reports the largest recorded value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) with
// one-bucket (≈6 %) resolution. Zero values (underflow) count below every
// bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target <= h.under {
		return histMin
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Upper edge of bucket i.
			return histMin * math.Pow(10, float64(i+1)/bucketsPerDecade)
		}
	}
	return h.max
}

// Merge adds other's contents into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.under += other.under
	h.over += other.over
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// QuantilesExact computes exact quantiles of a small sample slice (helper
// for tests and reports that do retain samples). xs is sorted in place.
func QuantilesExact(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	for i, q := range qs {
		if q <= 0 {
			out[i] = xs[0]
			continue
		}
		if q >= 1 {
			out[i] = xs[len(xs)-1]
			continue
		}
		idx := int(math.Ceil(q*float64(len(xs)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = xs[idx]
	}
	return out
}
