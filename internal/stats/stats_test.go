package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-very-long-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header, separator and both rows must share the same width.
	w := len(lines[1])
	for i, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(out, "a-very-long-name") {
		t.Error("row lost")
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestTableShortAndExtraRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-a")
	tb.AddRow("a", "b", "extra")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title emitted a blank line")
	}
	if !strings.Contains(out, "only-a") {
		t.Error("short row lost")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Cap", "A", "B")
	tb.AddRow("1", "2")
	tb.AddRow("only-a")
	md := tb.Markdown()
	for _, want := range []string{"**Cap**", "| A | B |", "|---|---|", "| 1 | 2 |", "| only-a |  |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	noTitle := NewTable("", "A")
	if strings.Contains(noTitle.Markdown(), "**") {
		t.Error("empty title rendered")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.AddRow("1", "2")
	want := "A,B\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSeriesAddValidation(t *testing.T) {
	s := NewSeries("f", "x", "%", 1, 2, 3)
	if err := s.Add("ok", 1, 2, 3); err != nil {
		t.Errorf("Add: %v", err)
	}
	if err := s.Add("bad", 1); err == nil {
		t.Error("length mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on mismatch")
		}
	}()
	s.MustAdd("bad", 1)
}

func TestSeriesTableAndChart(t *testing.T) {
	s := NewSeries("Fig", "size", "%", 0.5, 1, 10)
	s.MustAdd("policy-a", 10, 20, 30)
	s.MustAdd("policy-b", 5, 10, 15)
	tab := s.Table().String()
	for _, want := range []string{"Fig", "size", "policy-a", "policy-b", "0.5", "30.00"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	chart := s.Chart(40)
	if !strings.Contains(chart, "#") {
		t.Error("chart has no bars")
	}
	// policy-a at x=10 is the max → full width bar.
	if !strings.Contains(chart, strings.Repeat("#", 40)) {
		t.Error("max bar not full width")
	}
	full := s.String()
	if !strings.Contains(full, "Fig") || !strings.Contains(full, "#") {
		t.Error("String missing table or chart")
	}
}

func TestChartHandlesAllZero(t *testing.T) {
	s := NewSeries("z", "x", "%", 1)
	s.MustAdd("zero", 0)
	out := s.Chart(4) // also exercises the minimum-width clamp
	if !strings.Contains(out, "0.00") {
		t.Errorf("chart output: %q", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.12345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0); got != "0.00%" {
		t.Errorf("Pct(0) = %q", got)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:            "512 B",
		2048:           "2.00 KB",
		5 << 20:        "5.00 MB",
		3 << 30:        "3.00 GB",
		1<<40 + 1<<39:  "1.50 TB",
		1023:           "1023 B",
		1536:           "1.50 KB",
		int64(1) << 50: "1.00 PB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestStd(t *testing.T) {
	if Std(nil) != 0 || Std([]float64{5}) != 0 {
		t.Error("degenerate Std != 0")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got < 2.13 || got > 2.15 { // sample std ≈ 2.138
		t.Errorf("Std = %g", got)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio div-by-zero not guarded")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio wrong")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{0.5: "0.5", 10: "10", 0.125: "0.125", 20.50: "20.5"}
	for x, want := range cases {
		if got := trimFloat(x); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", x, got, want)
		}
	}
}

// TestQuickTableNeverPanics: arbitrary cell content renders without panic
// and preserves every cell.
func TestQuickTableNeverPanics(t *testing.T) {
	f := func(title string, cols []string, rows [][]string) bool {
		if len(cols) == 0 {
			cols = []string{"c"}
		}
		tb := NewTable(title, cols...)
		for _, r := range rows {
			tb.AddRow(r...)
		}
		out := tb.String()
		_ = tb.CSV()
		return len(out) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
