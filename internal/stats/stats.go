// Package stats provides the small numeric and presentation substrate the
// experiment harness uses: aligned text tables for the paper's Table 1,
// series containers for its figures (rendered as aligned columns and as
// coarse ASCII charts), and formatting helpers.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(width); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(width))
	for i, w := range width {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table (with the
// title as a bold caption line when present).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no escaping; cells in
// this repo contain no commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Line is one named series of a figure.
type Line struct {
	Name string
	Y    []float64
}

// Series is a figure: a shared X axis with one or more lines. Values are
// typically percentages.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Lines  []Line
}

// NewSeries creates a figure container.
func NewSeries(title, xlabel, ylabel string, x ...float64) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a line; y must match the X axis length.
func (s *Series) Add(name string, y ...float64) error {
	if len(y) != len(s.X) {
		return fmt.Errorf("stats: series %q: %d values for %d x points", name, len(y), len(s.X))
	}
	s.Lines = append(s.Lines, Line{Name: name, Y: y})
	return nil
}

// MustAdd is Add, panicking on length mismatch (programmer error).
func (s *Series) MustAdd(name string, y ...float64) {
	if err := s.Add(name, y...); err != nil {
		panic(err)
	}
}

// Table renders the series as an aligned table, one row per X value.
func (s *Series) Table() *Table {
	cols := append([]string{s.XLabel}, make([]string, len(s.Lines))...)
	for i, l := range s.Lines {
		cols[i+1] = l.Name
	}
	t := NewTable(s.Title, cols...)
	for xi, x := range s.X {
		row := make([]string, len(cols))
		row[0] = trimFloat(x)
		for li, l := range s.Lines {
			row[li+1] = fmt.Sprintf("%.2f", l.Y[xi])
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the series table followed by an ASCII chart.
func (s *Series) String() string {
	return s.Table().String() + "\n" + s.Chart(48)
}

// Chart renders a coarse horizontal bar chart, one bar per (x, line) pair,
// scaled to width characters at the maximum Y.
func (s *Series) Chart(width int) string {
	if width < 8 {
		width = 8
	}
	max := 0.0
	for _, l := range s.Lines {
		for _, y := range l.Y {
			if y > max {
				max = y
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	nameW := 0
	for _, l := range s.Lines {
		if len(l.Name) > nameW {
			nameW = len(l.Name)
		}
	}
	var b strings.Builder
	for xi, x := range s.X {
		fmt.Fprintf(&b, "%s=%s (%s)\n", s.XLabel, trimFloat(x), s.YLabel)
		for _, l := range s.Lines {
			n := int(math.Round(l.Y[xi] / max * float64(width)))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.2f\n", nameW, l.Name, strings.Repeat("#", n), l.Y[xi])
		}
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Pct formats a ratio in [0,1] as a percentage with two decimals.
func Pct(ratio float64) string {
	return fmt.Sprintf("%.2f%%", ratio*100)
}

// Bytes humanizes a byte count (KB/MB/GB, powers of 1024).
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %cB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Ratio returns num/den, or 0 when den == 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
