package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.N() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestHistogramBasicQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i) / 1000) // 1ms … 1s uniform
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	// Median ≈ 0.5 within one log-bucket (≈6%).
	med := h.Quantile(0.5)
	if med < 0.45 || med > 0.56 {
		t.Errorf("median %g, want ≈0.5", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.9 || p99 > 1.12 {
		t.Errorf("p99 %g, want ≈0.99", p99)
	}
	if got := h.Mean(); math.Abs(got-0.5005) > 0.001 {
		t.Errorf("mean %g", got)
	}
	if h.Max() != 1.0 {
		t.Errorf("max %g", h.Max())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	var h Histogram
	h.Add(0)    // underflow
	h.Add(-5)   // underflow
	h.Add(1e9)  // overflow (beyond 12 decades from 1µs)
	h.Add(0.01) // normal
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0.25); q != histMin {
		t.Errorf("low quantile %g, want underflow bound %g", q, histMin)
	}
	if q := h.Quantile(1.0); q != 1e9 {
		t.Errorf("q1.0 = %g, want max", q)
	}
	// Clamped inputs.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Add(0.001)
		b.Add(1.0)
	}
	a.Merge(&b)
	if a.N() != 200 {
		t.Fatalf("N = %d", a.N())
	}
	med := a.Quantile(0.5)
	if med > 0.002 {
		t.Errorf("median %g after merge, want ≈0.001", med)
	}
	if a.Quantile(0.99) < 0.9 {
		t.Errorf("p99 %g after merge", a.Quantile(0.99))
	}
	if a.Max() != 1.0 {
		t.Errorf("max %g", a.Max())
	}
}

// TestQuickHistogramQuantileBound: the histogram quantile is always an upper
// bound of the exact quantile and within one bucket width (6%) of it.
func TestQuickHistogramQuantileBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = math.Exp(rng.Float64()*10 - 5) // 6.7e-3 … 148, log-uniform
			h.Add(xs[i])
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			exact := QuantilesExact(append([]float64(nil), xs...), q)[0]
			approx := h.Quantile(q)
			if approx < exact*0.999 {
				t.Errorf("seed %d q%.2f: approx %g below exact %g", seed, q, approx, exact)
				return false
			}
			if approx > exact*1.07 {
				t.Errorf("seed %d q%.2f: approx %g more than a bucket above exact %g", seed, q, approx, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuantilesExact(t *testing.T) {
	if got := QuantilesExact(nil, 0.5); got[0] != 0 {
		t.Error("empty input")
	}
	xs := []float64{5, 1, 3, 2, 4}
	got := QuantilesExact(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("quantiles = %v", got)
	}
}
