package anonymity

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AddrHop is one relay on an address-routed covert path: the hop's network
// address (a peer-server base URL in the live system) and its 32-byte AES
// key. Unlike Hop (integer ids, used by the in-memory reference
// implementation), AddrHop carries everything a relay needs to forward
// without consulting any directory — the "no or limited centralized
// control" property.
type AddrHop struct {
	Addr string
	Key  []byte
}

// BuildRoute wraps payload in one encryption layer per hop, outermost
// first. Each hop peels its layer with PeelRoute and learns only the next
// hop's address; the payload surfaces at the terminal hop. The terminal
// layer carries an empty next-address.
func BuildRoute(path []AddrHop, payload []byte) ([]byte, error) {
	if len(path) == 0 {
		return nil, errors.New("anonymity: empty route")
	}
	msg := payload
	for i := len(path) - 1; i >= 0; i-- {
		next := ""
		if i < len(path)-1 {
			next = path[i+1].Addr
		}
		if len(next) > 1<<16-1 {
			return nil, fmt.Errorf("anonymity: address too long (%d bytes)", len(next))
		}
		header := make([]byte, 2+len(next))
		binary.BigEndian.PutUint16(header, uint16(len(next)))
		copy(header[2:], next)
		sealed, err := seal(path[i].Key, append(header, msg...))
		if err != nil {
			return nil, err
		}
		msg = sealed
	}
	return msg, nil
}

// PeelRoute removes one layer with the hop's key. final reports that rest is
// the payload; otherwise next is the address to forward rest to. Any
// tampering is detected by the layer's AES-GCM tag.
func PeelRoute(key, onion []byte) (next string, rest []byte, final bool, err error) {
	plain, err := open(key, onion)
	if err != nil {
		return "", nil, false, err
	}
	if len(plain) < 2 {
		return "", nil, false, errors.New("anonymity: short route layer")
	}
	n := int(binary.BigEndian.Uint16(plain[:2]))
	if len(plain) < 2+n {
		return "", nil, false, errors.New("anonymity: truncated route layer")
	}
	next = string(plain[2 : 2+n])
	rest = plain[2+n:]
	return next, rest, next == "", nil
}

// Seal encrypts plaintext for a single recipient key (AES-256-GCM) — the
// end-to-end payload protection used alongside route onions: relays forward
// the sealed payload untouched, and only the terminal hop (which learns the
// ephemeral key from its route layer) can open it.
func Seal(key, plaintext []byte) ([]byte, error) { return seal(key, plaintext) }

// Open reverses Seal.
func Open(key, sealed []byte) ([]byte, error) { return open(key, sealed) }
