// Package anonymity implements the paper's §6.2 communication-anonymity
// machinery (and the decentralized variant of its companion report
// HPL-2001-204): peer browsers exchange documents without learning each
// other's identity.
//
// Two mechanisms are provided:
//
//   - TicketStore: one-time opaque relay tickets. The proxy acts as an
//     anonymizing relay — it hands the holder a ticket-addressed drop
//     endpoint instead of the requester's address, so "the targeted client
//     does not know which client requests the document, and a requesting
//     client does not know which client delivers the content."
//
//   - Onions: layered symmetric encryption over a covert path of peers (the
//     "no or limited centralized control" variant). Each relay can decrypt
//     exactly one layer (AES-256-GCM), learning only the next hop; the
//     payload surfaces only at the terminal hop. The paper's era used DES;
//     AES is the modern stand-in in the identical protocol role.
package anonymity

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Ticket is an opaque one-time token.
type Ticket string

// TicketStore issues and redeems one-time tickets with expiry. It is safe
// for concurrent use.
type TicketStore struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[Ticket]ticketEntry
	now     func() time.Time // injectable for tests
}

type ticketEntry struct {
	payload []byte
	expires time.Time
}

// NewTicketStore creates a store whose tickets expire after ttl.
func NewTicketStore(ttl time.Duration) *TicketStore {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &TicketStore{
		ttl:     ttl,
		entries: make(map[Ticket]ticketEntry),
		now:     time.Now,
	}
}

// Issue creates a fresh ticket bound to payload (typically a serialized
// relay-session id). The ticket value is 128 bits of crypto/rand entropy.
func (ts *TicketStore) Issue(payload []byte) (Ticket, error) {
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return "", fmt.Errorf("anonymity: ticket entropy: %w", err)
	}
	tok := Ticket(base64.RawURLEncoding.EncodeToString(raw))
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.sweepLocked()
	ts.entries[tok] = ticketEntry{
		payload: append([]byte(nil), payload...),
		expires: ts.now().Add(ts.ttl),
	}
	return tok, nil
}

// Redeem consumes a ticket, returning its payload. A ticket redeems exactly
// once; expired or unknown tickets fail.
func (ts *TicketStore) Redeem(tok Ticket) ([]byte, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.entries[tok]
	if !ok {
		return nil, false
	}
	delete(ts.entries, tok)
	if ts.now().After(e.expires) {
		return nil, false
	}
	return e.payload, true
}

// Len reports the number of live (unredeemed, possibly expired) tickets.
func (ts *TicketStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.entries)
}

func (ts *TicketStore) sweepLocked() {
	now := ts.now()
	for tok, e := range ts.entries {
		if now.After(e.expires) {
			delete(ts.entries, tok)
		}
	}
}

// Hop names one relay on a covert path: the peer's id and its 32-byte
// AES-256 key (distributed out of band — in the live system, at
// registration).
type Hop struct {
	ID  int
	Key []byte
}

// terminal is the next-hop id stored in the innermost layer.
const terminal int32 = -1

// NewKey generates a 32-byte AES-256 key.
func NewKey() ([]byte, error) {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("anonymity: key entropy: %w", err)
	}
	return k, nil
}

// BuildOnion wraps payload in one encryption layer per hop, outermost first:
// path[0] peels first and learns only path[1]'s id, and so on; the payload
// surfaces at the last hop.
func BuildOnion(path []Hop, payload []byte) ([]byte, error) {
	if len(path) == 0 {
		return nil, errors.New("anonymity: empty path")
	}
	msg := payload
	for i := len(path) - 1; i >= 0; i-- {
		next := terminal
		if i < len(path)-1 {
			next = int32(path[i+1].ID)
		}
		header := make([]byte, 4)
		binary.BigEndian.PutUint32(header, uint32(next))
		sealed, err := seal(path[i].Key, append(header, msg...))
		if err != nil {
			return nil, err
		}
		msg = sealed
	}
	return msg, nil
}

// Peel removes one layer with the hop's key. final reports that the
// remaining bytes are the payload; otherwise next is the id of the peer to
// forward rest to. Tampering with any layer is detected (AES-GCM).
func Peel(key, onion []byte) (next int, rest []byte, final bool, err error) {
	plain, err := open(key, onion)
	if err != nil {
		return 0, nil, false, err
	}
	if len(plain) < 4 {
		return 0, nil, false, errors.New("anonymity: short layer")
	}
	n := int32(binary.BigEndian.Uint32(plain[:4]))
	if n == terminal {
		return 0, plain[4:], true, nil
	}
	return int(n), plain[4:], false, nil
}

func seal(key, plaintext []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("anonymity: nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

func open(key, sealed []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	ns := gcm.NonceSize()
	if len(sealed) < ns {
		return nil, errors.New("anonymity: ciphertext too short")
	}
	plain, err := gcm.Open(nil, sealed[:ns], sealed[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("anonymity: layer authentication failed: %w", err)
	}
	return plain, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("anonymity: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Route delivers an onion across an in-memory peer network — the reference
// implementation of the decentralized forwarding protocol, used by tests and
// the simulator-side overhead accounting. keys maps peer id → key; entry is
// the first hop's id. It returns the terminal payload and the number of
// hops traversed.
func Route(keys map[int][]byte, entry int, onion []byte) (payload []byte, hops int, err error) {
	cur := entry
	msg := onion
	for {
		key, ok := keys[cur]
		if !ok {
			return nil, hops, fmt.Errorf("anonymity: no key for peer %d", cur)
		}
		next, rest, final, err := Peel(key, msg)
		if err != nil {
			return nil, hops, err
		}
		hops++
		if final {
			return rest, hops, nil
		}
		cur = next
		msg = rest
	}
}
