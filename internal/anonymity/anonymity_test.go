package anonymity

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestTicketIssueRedeem(t *testing.T) {
	ts := NewTicketStore(time.Minute)
	tok, err := ts.Issue([]byte("session-7"))
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	payload, ok := ts.Redeem(tok)
	if !ok || string(payload) != "session-7" {
		t.Fatalf("Redeem = %q, %v", payload, ok)
	}
}

func TestTicketIsOneTime(t *testing.T) {
	ts := NewTicketStore(time.Minute)
	tok, _ := ts.Issue([]byte("x"))
	ts.Redeem(tok)
	if _, ok := ts.Redeem(tok); ok {
		t.Fatal("ticket redeemed twice")
	}
}

func TestTicketUnknownFails(t *testing.T) {
	ts := NewTicketStore(time.Minute)
	if _, ok := ts.Redeem("no-such-ticket"); ok {
		t.Fatal("unknown ticket redeemed")
	}
}

func TestTicketExpiry(t *testing.T) {
	ts := NewTicketStore(time.Second)
	now := time.Unix(1000, 0)
	ts.now = func() time.Time { return now }
	tok, _ := ts.Issue([]byte("x"))
	now = now.Add(2 * time.Second)
	if _, ok := ts.Redeem(tok); ok {
		t.Fatal("expired ticket redeemed")
	}
	// Sweep on Issue removes expired entries.
	tok2, _ := ts.Issue([]byte("y"))
	if ts.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1", ts.Len())
	}
	if _, ok := ts.Redeem(tok2); !ok {
		t.Fatal("fresh ticket failed")
	}
}

func TestTicketsUnique(t *testing.T) {
	ts := NewTicketStore(time.Minute)
	seen := map[Ticket]bool{}
	for i := 0; i < 200; i++ {
		tok, err := ts.Issue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatal("duplicate ticket issued")
		}
		seen[tok] = true
	}
}

func TestDefaultTTL(t *testing.T) {
	ts := NewTicketStore(0)
	if ts.ttl <= 0 {
		t.Fatal("zero ttl not defaulted")
	}
}

func mustKey(t *testing.T) []byte {
	t.Helper()
	k, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestOnionSingleHop(t *testing.T) {
	k := mustKey(t)
	onion, err := BuildOnion([]Hop{{ID: 5, Key: k}}, []byte("the document"))
	if err != nil {
		t.Fatalf("BuildOnion: %v", err)
	}
	next, rest, final, err := Peel(k, onion)
	if err != nil {
		t.Fatalf("Peel: %v", err)
	}
	if !final || string(rest) != "the document" || next != 0 {
		t.Fatalf("Peel = next %d, %q, final %v", next, rest, final)
	}
}

func TestOnionMultiHopRouting(t *testing.T) {
	keys := map[int][]byte{1: mustKey(t), 2: mustKey(t), 3: mustKey(t)}
	path := []Hop{{ID: 1, Key: keys[1]}, {ID: 2, Key: keys[2]}, {ID: 3, Key: keys[3]}}
	payload := []byte("covert body")
	onion, err := BuildOnion(path, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, hops, err := Route(keys, 1, onion)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if hops != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("Route = %q after %d hops", got, hops)
	}
}

func TestOnionHopOnlyLearnsNextHop(t *testing.T) {
	keys := map[int][]byte{1: mustKey(t), 2: mustKey(t)}
	onion, _ := BuildOnion([]Hop{{ID: 1, Key: keys[1]}, {ID: 2, Key: keys[2]}}, []byte("p"))
	next, rest, final, err := Peel(keys[1], onion)
	if err != nil {
		t.Fatal(err)
	}
	if final {
		t.Fatal("first hop saw the payload")
	}
	if next != 2 {
		t.Fatalf("next = %d, want 2", next)
	}
	// The inner layer is ciphertext for hop 1: peeling it with hop 1's
	// key must fail (it is encrypted to hop 2).
	if _, _, _, err := Peel(keys[1], rest); err == nil {
		t.Fatal("hop 1 decrypted hop 2's layer")
	}
}

func TestOnionTamperDetected(t *testing.T) {
	k := mustKey(t)
	onion, _ := BuildOnion([]Hop{{ID: 1, Key: k}}, []byte("p"))
	onion[len(onion)-1] ^= 1
	if _, _, _, err := Peel(k, onion); err == nil {
		t.Fatal("tampered onion peeled")
	}
}

func TestOnionWrongKeyFails(t *testing.T) {
	onion, _ := BuildOnion([]Hop{{ID: 1, Key: mustKey(t)}}, []byte("p"))
	if _, _, _, err := Peel(mustKey(t), onion); err == nil {
		t.Fatal("wrong key peeled the onion")
	}
}

func TestOnionValidation(t *testing.T) {
	if _, err := BuildOnion(nil, []byte("p")); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := BuildOnion([]Hop{{ID: 1, Key: []byte("short")}}, []byte("p")); err == nil {
		t.Error("short key accepted")
	}
	if _, _, _, err := Peel(mustKey(t), []byte("tiny")); err == nil {
		t.Error("tiny ciphertext accepted")
	}
}

func TestRouteMissingKey(t *testing.T) {
	k := mustKey(t)
	onion, _ := BuildOnion([]Hop{{ID: 1, Key: k}, {ID: 9, Key: mustKey(t)}}, []byte("p"))
	if _, _, err := Route(map[int][]byte{1: k}, 1, onion); err == nil {
		t.Fatal("route with missing key succeeded")
	}
}

// TestQuickOnionRoundTrip: arbitrary payloads over arbitrary path lengths.
func TestQuickOnionRoundTrip(t *testing.T) {
	f := func(payload []byte, pathLen uint8) bool {
		n := int(pathLen%5) + 1
		keys := map[int][]byte{}
		path := make([]Hop, n)
		for i := 0; i < n; i++ {
			k, err := NewKey()
			if err != nil {
				t.Fatal(err)
			}
			keys[i+10] = k
			path[i] = Hop{ID: i + 10, Key: k}
		}
		onion, err := BuildOnion(path, payload)
		if err != nil {
			t.Errorf("BuildOnion: %v", err)
			return false
		}
		got, hops, err := Route(keys, 10, onion)
		if err != nil {
			t.Errorf("Route: %v", err)
			return false
		}
		return hops == n && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
