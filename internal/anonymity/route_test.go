package anonymity

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuildRouteSingleHop(t *testing.T) {
	k := mustKey(t)
	onion, err := BuildRoute([]AddrHop{{Addr: "http://a", Key: k}}, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	next, rest, final, err := PeelRoute(k, onion)
	if err != nil {
		t.Fatal(err)
	}
	if !final || next != "" || string(rest) != "payload" {
		t.Fatalf("PeelRoute = %q, %q, %v", next, rest, final)
	}
}

func TestBuildRouteMultiHop(t *testing.T) {
	keys := [][]byte{mustKey(t), mustKey(t), mustKey(t)}
	path := []AddrHop{
		{Addr: "http://relay1", Key: keys[0]},
		{Addr: "http://relay2", Key: keys[1]},
		{Addr: "http://requester", Key: keys[2]},
	}
	onion, err := BuildRoute(path, []byte("doc"))
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1 learns only relay2's address.
	next, rest, final, err := PeelRoute(keys[0], onion)
	if err != nil || final || next != "http://relay2" {
		t.Fatalf("hop1: %q %v %v", next, final, err)
	}
	// Hop 1 cannot peel deeper.
	if _, _, _, err := PeelRoute(keys[0], rest); err == nil {
		t.Fatal("hop1 peeled hop2's layer")
	}
	next, rest, final, err = PeelRoute(keys[1], rest)
	if err != nil || final || next != "http://requester" {
		t.Fatalf("hop2: %q %v %v", next, final, err)
	}
	next, rest, final, err = PeelRoute(keys[2], rest)
	if err != nil || !final || next != "" || string(rest) != "doc" {
		t.Fatalf("terminal: %q %q %v %v", next, rest, final, err)
	}
}

func TestBuildRouteValidation(t *testing.T) {
	if _, err := BuildRoute(nil, []byte("p")); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := BuildRoute([]AddrHop{{Addr: "a", Key: []byte("short")}}, []byte("p")); err == nil {
		t.Error("bad key accepted")
	}
}

func TestPeelRouteTamper(t *testing.T) {
	k := mustKey(t)
	onion, _ := BuildRoute([]AddrHop{{Addr: "a", Key: k}}, []byte("p"))
	onion[5] ^= 1
	if _, _, _, err := PeelRoute(k, onion); err == nil {
		t.Fatal("tampered route peeled")
	}
}

func TestSealOpen(t *testing.T) {
	k := mustKey(t)
	sealed, err := Seal(k, []byte("end-to-end"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(k, sealed)
	if err != nil || string(got) != "end-to-end" {
		t.Fatalf("Open = %q, %v", got, err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := Open(k, sealed); err == nil {
		t.Fatal("tampered seal opened")
	}
	if _, err := Open(mustKey(t), sealed); err == nil {
		t.Fatal("wrong key opened")
	}
}

// TestQuickRouteRoundTrip: arbitrary payloads and path lengths route
// end-to-end with each hop learning exactly the next address.
func TestQuickRouteRoundTrip(t *testing.T) {
	f := func(payload []byte, n uint8) bool {
		hops := int(n%4) + 1
		path := make([]AddrHop, hops)
		for i := range path {
			k, err := NewKey()
			if err != nil {
				t.Fatal(err)
			}
			path[i] = AddrHop{Addr: string(rune('a' + i)), Key: k}
		}
		onion, err := BuildRoute(path, payload)
		if err != nil {
			t.Errorf("BuildRoute: %v", err)
			return false
		}
		msg := onion
		for i := 0; i < hops; i++ {
			next, rest, final, err := PeelRoute(path[i].Key, msg)
			if err != nil {
				t.Errorf("hop %d: %v", i, err)
				return false
			}
			if i == hops-1 {
				return final && bytes.Equal(rest, payload)
			}
			if final || next != path[i+1].Addr {
				t.Errorf("hop %d: next %q final %v", i, next, final)
				return false
			}
			msg = rest
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
