package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("fetch")
	if s != nil {
		t.Fatal("nil tracer should return nil span")
	}
	// All span methods must be safe on nil.
	s.SetClient(1)
	s.SetURL("u")
	s.Event("e", "")
	s.Finish("ok", nil)
	if tr.Total() != 0 {
		t.Fatal("nil tracer Total != 0")
	}
	if tr.Last(5) != nil {
		t.Fatal("nil tracer Last != nil")
	}
}

func TestRingWrapAndLast(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		s := tr.StartSpan("op")
		s.SetClient(i)
		s.Finish("ok", nil)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	recs := tr.Last(10)
	if len(recs) != 4 {
		t.Fatalf("Last returned %d records, want 4 (ring depth)", len(recs))
	}
	for i, rec := range recs {
		if want := 9 - i; rec.Client != want {
			t.Errorf("recs[%d].Client = %d, want %d (newest first)", i, rec.Client, want)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[0].Client != 9 {
		t.Errorf("Last(2) = %+v", got)
	}
}

func TestSpanLifecycleAndLateEvents(t *testing.T) {
	tr := NewTracer(8)
	s := tr.StartSpan("fetch")
	s.SetClient(3)
	s.SetURL("http://o/x")
	s.Event("index", "2 holders")
	s.Finish("peer_fetch_forward", nil)
	// A hedged loser annotating after Finish must not mutate the record.
	s.Event("late", "loser")
	s.Finish("origin", errors.New("double finish"))

	recs := tr.Last(1)
	if len(recs) != 1 {
		t.Fatal("no record")
	}
	rec := recs[0]
	if rec.Client != 3 || rec.URL != "http://o/x" || rec.Outcome != "peer_fetch_forward" || rec.Error != "" {
		t.Errorf("record = %+v", rec)
	}
	if len(rec.Events) != 1 || rec.Events[0].Name != "index" {
		t.Errorf("events = %+v", rec.Events)
	}
	if tr.Total() != 1 {
		t.Errorf("Total = %d after double finish, want 1", tr.Total())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := tr.StartSpan("op")
				s.SetClient(id)
				s.Event("e", "")
				s.Finish("ok", nil)
				// Late annotation racing the next span.
				s.Event("late", "")
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Total(); got != 16*50 {
		t.Fatalf("Total = %d, want %d", got, 16*50)
	}
}

func TestSampledJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.SetSample(&buf, 3)
	for i := 0; i < 10; i++ {
		s := tr.StartSpan("op")
		s.SetClient(i)
		s.Finish("ok", nil)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("sampled %d lines, want 3 (every 3rd of 10)", len(lines))
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("bad JSONL line %q: %v", line, err)
		}
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err == nil && rec.Client != 2 {
		t.Errorf("first sampled span client = %d, want 2", rec.Client)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		s := tr.StartSpan("op")
		s.SetClient(i)
		s.Finish("ok", nil)
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Client != 4 {
		t.Errorf("got %d records, first client %d; want 3 records newest first", len(recs), recs[0].Client)
	}

	bad, err := srv.Client().Get(srv.URL + "?n=zebra")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad n status = %d, want 400", bad.StatusCode)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTracer(4)
	s := tr.StartSpan("op")
	ctx := WithSpan(context.Background(), s)
	if got := SpanFrom(ctx); got != s {
		t.Fatal("SpanFrom did not return the carried span")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatal("SpanFrom on empty context should be nil")
	}
	if ctx2 := WithSpan(context.Background(), nil); SpanFrom(ctx2) != nil {
		t.Fatal("WithSpan(nil) should not store a span")
	}
}
