package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"baps/internal/stats"
)

// fmtFloat renders v exactly as the exposition writer does.
func fmtFloat(v float64) string {
	var b strings.Builder
	writeFloat(&b, v)
	return b.String()
}

// TestExpositionGolden locks the text exposition format: family ordering by
// name, HELP/TYPE lines, sorted and escaped labels, summary quantiles.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("baps_test_requests_total", "Total requests.").Add(12)
	r.Gauge("baps_test_clients", "Registered clients.").Set(3)
	r.FloatCounter("baps_test_busy_seconds_total", "Busy seconds.").Add(1.5)
	vec := r.CounterVec("baps_test_outcomes_total", "Fetch outcomes.", "outcome")
	vec.With("proxy_hit").Add(7)
	vec.With("origin").Add(2)
	vec.With(`we"ird\va` + "\n" + `lue`).Inc()
	r.GaugeFunc("baps_test_uptime_seconds", "Uptime.", func() float64 { return 2.5 })
	r.LabeledGaugeFunc("baps_test_breaker_peers", "Peers by breaker state.", "state", "open", func() float64 { return 1 })
	r.LabeledGaugeFunc("baps_test_breaker_peers", "Peers by breaker state.", "state", "closed", func() float64 { return 4 })
	r.CounterFunc("baps_test_fetches_total", "Origin fetches.", func() int64 { return 9 })
	s := r.Summary("baps_test_latency_seconds", "Request latency.")
	for i := 0; i < 100; i++ {
		s.Observe(0.010)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// The summary's quantile is the log-scale bucket upper edge, so the
	// expected values are derived from a reference histogram fed the same
	// observations rather than hardcoded decimals.
	var ref stats.Histogram
	for i := 0; i < 100; i++ {
		ref.Add(0.010)
	}
	q := fmtFloat(ref.Quantile(0.5))
	refSum := fmtFloat(ref.Mean() * float64(ref.N()))

	want := `# HELP baps_test_breaker_peers Peers by breaker state.
# TYPE baps_test_breaker_peers gauge
baps_test_breaker_peers{state="closed"} 4
baps_test_breaker_peers{state="open"} 1
# HELP baps_test_busy_seconds_total Busy seconds.
# TYPE baps_test_busy_seconds_total counter
baps_test_busy_seconds_total 1.5
# HELP baps_test_clients Registered clients.
# TYPE baps_test_clients gauge
baps_test_clients 3
# HELP baps_test_fetches_total Origin fetches.
# TYPE baps_test_fetches_total counter
baps_test_fetches_total 9
# HELP baps_test_latency_seconds Request latency.
# TYPE baps_test_latency_seconds summary
baps_test_latency_seconds{quantile="0.5"} ` + q + `
baps_test_latency_seconds{quantile="0.95"} ` + q + `
baps_test_latency_seconds{quantile="0.99"} ` + q + `
baps_test_latency_seconds_sum ` + refSum + `
baps_test_latency_seconds_count 100
# HELP baps_test_outcomes_total Fetch outcomes.
# TYPE baps_test_outcomes_total counter
baps_test_outcomes_total{outcome="origin"} 2
baps_test_outcomes_total{outcome="proxy_hit"} 7
baps_test_outcomes_total{outcome="we\"ird\\va\nlue"} 1
# HELP baps_test_requests_total Total requests.
# TYPE baps_test_requests_total counter
baps_test_requests_total 12
# HELP baps_test_uptime_seconds Uptime.
# TYPE baps_test_uptime_seconds gauge
baps_test_uptime_seconds 2.5
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses round-trips the output through a minimal line parser
// to catch structural violations (every sample line names a registered
// family, no stray whitespace).
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "x").Inc()
	r.Summary("b_seconds", "y").Observe(2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		if !validName(name) {
			t.Errorf("invalid metric name in line %q", line)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Add(5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "h_total 5") {
		t.Errorf("body missing sample: %s", body)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
