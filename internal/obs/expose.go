package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp escapes a HELP string: backslash and newline.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// writeFloat renders a float the way Prometheus clients do: integers
// without an exponent, specials as +Inf/-Inf/NaN.
func writeFloat(w io.Writer, v float64) {
	switch {
	case math.IsInf(v, +1):
		io.WriteString(w, "+Inf")
	case math.IsInf(v, -1):
		io.WriteString(w, "-Inf")
	case math.IsNaN(v):
		io.WriteString(w, "NaN")
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		io.WriteString(w, strconv.FormatInt(int64(v), 10))
	default:
		io.WriteString(w, strconv.FormatFloat(v, 'g', -1, 64))
	}
}

// WriteText writes every registered family in Prometheus text exposition
// format 0.0.4, families sorted by name and labeled children sorted by
// label value.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshotMetrics() {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, helpEscaper.Replace(m.help))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.cfn())
		case kindFloatCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s ", m.name, m.name)
			writeFloat(bw, m.fcounter.Value())
			bw.WriteByte('\n')
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", m.name)
			children := make([]labeledFunc, len(m.gfns))
			copy(children, m.gfns)
			sort.Slice(children, func(i, j int) bool { return children[i].value < children[j].value })
			for _, lf := range children {
				if lf.label == "" {
					fmt.Fprintf(bw, "%s ", m.name)
				} else {
					fmt.Fprintf(bw, "%s{%s=\"%s\"} ", m.name, lf.label, labelEscaper.Replace(lf.value))
				}
				writeFloat(bw, lf.fn())
				bw.WriteByte('\n')
			}
		case kindCounterVec:
			fmt.Fprintf(bw, "# TYPE %s counter\n", m.name)
			m.vec.mu.RLock()
			values := make([]string, 0, len(m.vec.byName))
			for v := range m.vec.byName {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", m.name, m.vec.label, labelEscaper.Replace(v), m.vec.byName[v].Value())
			}
			m.vec.mu.RUnlock()
		case kindSummary:
			n, sum, q50, q95, q99 := m.summary.snapshot()
			fmt.Fprintf(bw, "# TYPE %s summary\n", m.name)
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", q50}, {"0.95", q95}, {"0.99", q99}} {
				fmt.Fprintf(bw, "%s{quantile=%q} ", m.name, q.q)
				writeFloat(bw, q.v)
				bw.WriteByte('\n')
			}
			fmt.Fprintf(bw, "%s_sum ", m.name)
			writeFloat(bw, sum)
			fmt.Fprintf(bw, "\n%s_count %d\n", m.name, n)
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry in text exposition
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}
