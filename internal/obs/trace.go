package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one timestamped annotation inside a span.
type SpanEvent struct {
	// AtMS is the event offset from span start in milliseconds.
	AtMS   float64 `json:"at_ms"`
	Name   string  `json:"name"`
	Detail string  `json:"detail,omitempty"`
}

// SpanRecord is the immutable snapshot of a finished span, as served by
// GET /trace and written to the sampled JSONL log.
type SpanRecord struct {
	ID         uint64      `json:"id"`
	Op         string      `json:"op"`
	Client     int         `json:"client"`
	URL        string      `json:"url,omitempty"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Outcome    string      `json:"outcome,omitempty"`
	Error      string      `json:"error,omitempty"`
	Events     []SpanEvent `json:"events,omitempty"`
}

// Span is one in-flight request trace. All methods are safe on a nil
// receiver (tracing disabled) and safe for concurrent use: the losing arm
// of a hedged fetch may annotate the span after the winner finished it, in
// which case the late event is dropped.
type Span struct {
	tracer *Tracer
	id     uint64
	op     string
	start  time.Time

	mu      sync.Mutex
	done    bool
	client  int
	url     string
	outcome string
	err     string
	events  []SpanEvent
}

// SetClient records the requesting client id.
func (s *Span) SetClient(id int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.client = id
	}
	s.mu.Unlock()
}

// SetURL records the requested URL.
func (s *Span) SetURL(url string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.url = url
	}
	s.mu.Unlock()
}

// Event appends a timestamped annotation.
func (s *Span) Event(name, detail string) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	if !s.done {
		s.events = append(s.events, SpanEvent{
			AtMS:   float64(at.Microseconds()) / 1e3,
			Name:   name,
			Detail: detail,
		})
	}
	s.mu.Unlock()
}

// Finish seals the span with its outcome (and optional error) and hands the
// record to the tracer's ring buffer and sampler. Later Finish or Event
// calls are no-ops.
func (s *Span) Finish(outcome string, err error) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.outcome = outcome
	if err != nil {
		s.err = err.Error()
	}
	rec := SpanRecord{
		ID:         s.id,
		Op:         s.op,
		Client:     s.client,
		URL:        s.url,
		Start:      s.start,
		DurationMS: float64(dur.Microseconds()) / 1e3,
		Outcome:    s.outcome,
		Error:      s.err,
		Events:     s.events,
	}
	s.events = nil
	s.mu.Unlock()
	s.tracer.record(rec)
}

// Tracer keeps the last N finished spans in a ring buffer and optionally
// samples every k-th record to a JSONL writer.
type Tracer struct {
	nextID atomic.Uint64

	mu       sync.Mutex
	ring     []SpanRecord
	next     int // ring insertion cursor
	total    uint64
	sample   io.Writer
	every    int
	recorded uint64 // count used for sampling modulus
}

// DefaultTraceDepth is the ring size used when NewTracer is given n <= 0.
const DefaultTraceDepth = 256

// NewTracer returns a tracer retaining the last n finished spans.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceDepth
	}
	return &Tracer{ring: make([]SpanRecord, 0, n)}
}

// SetSample directs every k-th finished span to w as one JSON line. every
// <= 0 disables sampling; every == 1 logs all spans.
func (t *Tracer) SetSample(w io.Writer, every int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sample = w
	t.every = every
	t.mu.Unlock()
}

// StartSpan opens a span for the named operation. A nil tracer returns a
// nil span, on which every method is a no-op — callers never branch.
func (t *Tracer) StartSpan(op string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		op:     op,
		start:  time.Now(),
		client: -1,
	}
}

func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	var line []byte
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.recorded++
	if t.sample != nil && t.every > 0 && t.recorded%uint64(t.every) == 0 {
		line, _ = json.Marshal(rec)
	}
	w := t.sample
	t.mu.Unlock()
	if line != nil {
		// Write outside the tracer lock; one Write per line keeps JSONL
		// records whole for io.Writers with atomic writes (files, pipes).
		w.Write(append(line, '\n'))
	}
}

// Total reports how many spans have finished since the tracer was created.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns up to n most recent finished spans, newest first.
func (t *Tracer) Last(n int) []SpanRecord {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]SpanRecord, 0, n)
	// Newest element sits just before the insertion cursor once the ring
	// has wrapped; before that, it is the last appended element.
	idx := t.next - 1
	if len(t.ring) < cap(t.ring) {
		idx = len(t.ring) - 1
	}
	for i := 0; i < n; i++ {
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
		idx--
	}
	return out
}

// Handler serves the ring buffer as a JSON array, newest first — mount it
// at GET /trace. ?n=K bounds the result (default and max: ring depth).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n := cap(t.ring)
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if v < n {
				n = v
			}
		}
		recs := t.Last(n)
		if recs == nil {
			recs = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(recs)
	})
}

// spanKey is the context key for the active span.
type spanKey struct{}

// WithSpan returns a context carrying s.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
