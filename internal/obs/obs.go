// Package obs is the repository's zero-dependency observability plane:
// a metrics registry with atomic counters, gauges, and label-sharded
// variants; Prometheus text-format exposition; and a lightweight
// ring-buffered request tracer.
//
// The package is built for the hot paths it instruments. Counter and Gauge
// increments are single atomic operations with no allocation, so the
// simulator's Access loop and the live proxy's fetch path can stay at
// 0 allocs/op with metrics enabled. Label lookups (CounterVec.With) do
// allocate-free map reads after first use; callers on hot paths should
// resolve the *Counter once and keep the pointer.
package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"baps/internal/stats"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (callers must keep counters monotone; negative deltas are
// a programming error but are not checked on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (seconds totals).
// It uses compare-and-swap on the bit pattern, so Add is lock-free and safe
// under -race.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds delta.
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a counter family sharded by one label. With returns the
// child counter for a label value, creating it on first use; the returned
// pointer can be cached by hot-path callers so steady-state increments are
// a single atomic add.
type CounterVec struct {
	label string

	mu     sync.RWMutex
	byName map[string]*Counter
	byInt  map[int]*Counter // WithInt cache: avoids strconv on numeric labels
}

func newCounterVec(label string) *CounterVec {
	return &CounterVec{
		label:  label,
		byName: make(map[string]*Counter),
		byInt:  make(map[int]*Counter),
	}
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.byName[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.byName[value]; c == nil {
		c = new(Counter)
		v.byName[value] = c
	}
	return c
}

// WithInt returns the child counter for a numeric label value (formatted in
// decimal). The int-keyed cache means repeat lookups never format the
// number, so per-peer accounting by client id stays allocation-free after
// the first serve.
func (v *CounterVec) WithInt(id int) *Counter {
	v.mu.RLock()
	c := v.byInt[id]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.byInt[id]; c == nil {
		c = v.withLocked(itoa(id))
		v.byInt[id] = c
	}
	return c
}

func (v *CounterVec) withLocked(value string) *Counter {
	c := v.byName[value]
	if c == nil {
		c = new(Counter)
		v.byName[value] = c
	}
	return c
}

// Sum reports the total across all label values.
func (v *CounterVec) Sum() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var sum int64
	for _, c := range v.byName {
		sum += c.Value()
	}
	return sum
}

// Summary records a value distribution on a fixed-layout log-scale
// histogram (stats.Histogram) under a mutex, and is exposed as a Prometheus
// summary with 0.5/0.95/0.99 quantiles plus _sum and _count.
type Summary struct {
	mu   sync.Mutex
	hist stats.Histogram
}

// Observe records one value (seconds, here).
func (s *Summary) Observe(x float64) {
	s.mu.Lock()
	s.hist.Add(x)
	s.mu.Unlock()
}

// Count reports the number of observations.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.N()
}

// snapshot returns (count, sum, q50, q95, q99) under the lock.
func (s *Summary) snapshot() (n int64, sum, q50, q95, q99 float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n = s.hist.N()
	sum = s.hist.Mean() * float64(n)
	q50 = s.hist.Quantile(0.50)
	q95 = s.hist.Quantile(0.95)
	q99 = s.hist.Quantile(0.99)
	return
}

// itoa formats a non-negative (or small negative) int without fmt.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
