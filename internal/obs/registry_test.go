package obs

import (
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers one counter, one vec, one gauge, one
// float counter, and one summary from many goroutines and checks the exact
// totals — the -race proof that hot-path increments are safe.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	fc := r.FloatCounter("f_total", "test float counter")
	vec := r.CounterVec("v_total", "test vec", "who")
	sum := r.Summary("s_seconds", "test summary")

	const (
		goroutines = 32
		perG       = 2_000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			child := vec.WithInt(id % 4)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				fc.Add(0.5)
				child.Inc()
				vec.With("shared").Inc()
				sum.Observe(0.001)
			}
		}(i)
	}
	wg.Wait()

	const want = goroutines * perG
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := fc.Value(); got != want/2 {
		t.Errorf("float counter = %g, want %d", got, want/2)
	}
	if got := vec.Sum(); got != 2*want {
		t.Errorf("vec sum = %d, want %d", got, 2*want)
	}
	if got := r.VecValue("v_total", "shared"); got != want {
		t.Errorf("vec[shared] = %d, want %d", got, want)
	}
	if got := r.VecValue("v_total", "2"); got != perG*goroutines/4 {
		t.Errorf("vec[2] = %d, want %d", got, perG*goroutines/4)
	}
	if got := sum.Count(); got != want {
		t.Errorf("summary count = %d, want %d", got, want)
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	v1 := r.CounterVec("y_total", "", "peer")
	v2 := r.CounterVec("y_total", "", "peer")
	if v1 != v2 {
		t.Fatal("CounterVec not idempotent")
	}
	if v1.WithInt(7) != v1.With("7") {
		t.Fatal("WithInt and With disagree on the same label value")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9abc", "a-b", "a b", "a{}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for name %q", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	for _, good := range []string{"a", "_x", "ns:metric_total", "A9_"} {
		r.Counter(good, "")
	}
}

func TestAccessorsOnMissingAndWrongKinds(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "").Set(3)
	r.GaugeFunc("gf", "", func() float64 { return 1.5 })
	r.LabeledGaugeFunc("lg", "", "state", "open", func() float64 { return 2 })
	r.LabeledGaugeFunc("lg", "", "state", "closed", func() float64 { return 5 })
	r.CounterFunc("cf_total", "", func() int64 { return 42 })

	if got := r.CounterValue("missing"); got != 0 {
		t.Errorf("CounterValue(missing) = %d", got)
	}
	if got := r.CounterValue("g"); got != 0 {
		t.Errorf("CounterValue(gauge) = %d, want 0", got)
	}
	if got := r.CounterValue("cf_total"); got != 42 {
		t.Errorf("CounterValue(cf_total) = %d, want 42", got)
	}
	if got := r.GaugeValue("g"); got != 3 {
		t.Errorf("GaugeValue(g) = %g, want 3", got)
	}
	if got := r.GaugeValue("gf"); got != 1.5 {
		t.Errorf("GaugeValue(gf) = %g, want 1.5", got)
	}
	if got := r.GaugeValue("lg"); got != 7 {
		t.Errorf("GaugeValue(lg) = %g, want 7 (sum of children)", got)
	}
	if got := r.VecValue("g", "x"); got != 0 {
		t.Errorf("VecValue on gauge = %d, want 0", got)
	}
}
