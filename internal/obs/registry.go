package obs

import (
	"fmt"
	"sort"
	"sync"
)

// metricKind discriminates the families a Registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindCounterVec
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindFloatCounter:
		return "float counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge func"
	case kindCounterFunc:
		return "counter func"
	case kindCounterVec:
		return "counter vec"
	case kindSummary:
		return "summary"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// labeledFunc is one callback child of a gauge-func family.
type labeledFunc struct {
	label string // label name ("" for an unlabeled single-child family)
	value string // label value
	fn    func() float64
}

// metric is one named family in a registry.
type metric struct {
	name string
	help string
	kind metricKind

	counter  *Counter
	fcounter *FloatCounter
	gauge    *Gauge
	vec      *CounterVec
	summary  *Summary
	gfns     []labeledFunc // kindGaugeFunc: one or more labeled callbacks
	cfn      func() int64  // kindCounterFunc
}

// Registry is a named collection of metrics. All getters are get-or-create
// and panic when a name is reused with a different kind or label — metric
// registration is programmer-controlled, so a mismatch is a bug, not a
// runtime condition.
//
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*metric
	ordered []*metric // registration order; exposition sorts by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// validName reports whether name matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// get returns the existing family for name after checking its kind, or
// registers a new one built by mk. Called with r.mu held for writing.
func (r *Registry) get(name, help string, kind metricKind, mk func(*metric)) *metric {
	if m := r.byName[name]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, kindCounter, func(m *metric) { m.counter = new(Counter) }).counter
}

// FloatCounter returns the float counter registered under name.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, kindFloatCounter, func(m *metric) { m.fcounter = new(FloatCounter) }).fcounter
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, kindGauge, func(m *metric) { m.gauge = new(Gauge) }).gauge
}

// GaugeFunc registers a callback-backed gauge: the function is invoked at
// exposition time. Re-registering the same name replaces the callback,
// so components that rebuild (e.g. test servers) stay idempotent.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name, help, kindGaugeFunc, func(m *metric) {})
	m.gfns = []labeledFunc{{fn: fn}}
}

// LabeledGaugeFunc registers one labeled child of a callback-backed gauge
// family; multiple calls with the same name and label but different values
// accumulate children (e.g. breaker peers by state). Registering an
// existing (name, value) pair replaces that child's callback.
func (r *Registry) LabeledGaugeFunc(name, help, label, value string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name, help, kindGaugeFunc, func(m *metric) {})
	for i := range m.gfns {
		if m.gfns[i].label == label && m.gfns[i].value == value {
			m.gfns[i].fn = fn
			return
		}
	}
	if len(m.gfns) > 0 && m.gfns[0].label != label {
		panic(fmt.Sprintf("obs: gauge func %q label %q conflicts with %q", name, label, m.gfns[0].label))
	}
	m.gfns = append(m.gfns, labeledFunc{label: label, value: value, fn: fn})
}

// CounterFunc registers a callback-backed counter, for components that
// already maintain their own (e.g. mutex-guarded) counts. Re-registering
// replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name, help, kindCounterFunc, func(m *metric) {})
	m.cfn = fn
}

// CounterVec returns the one-label counter family registered under name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name, help, kindCounterVec, func(m *metric) { m.vec = newCounterVec(label) })
	if m.vec.label != label {
		panic(fmt.Sprintf("obs: counter vec %q label %q conflicts with %q", name, label, m.vec.label))
	}
	return m.vec
}

// Summary returns the summary registered under name.
func (r *Registry) Summary(name, help string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(name, help, kindSummary, func(m *metric) { m.summary = new(Summary) }).summary
}

// CounterValue reports the current value of a counter-like family (counter,
// counter func, or the sum across a counter vec). Unknown names report 0,
// so tests can assert on metrics that may not have been touched yet.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	m := r.byName[name]
	r.mu.RUnlock()
	if m == nil {
		return 0
	}
	switch m.kind {
	case kindCounter:
		return m.counter.Value()
	case kindCounterFunc:
		return m.cfn()
	case kindCounterVec:
		return m.vec.Sum()
	default:
		return 0
	}
}

// VecValue reports the current value of one labeled child of a counter vec.
// Unknown names or label values report 0.
func (r *Registry) VecValue(name, labelValue string) int64 {
	r.mu.RLock()
	m := r.byName[name]
	r.mu.RUnlock()
	if m == nil || m.kind != kindCounterVec {
		return 0
	}
	m.vec.mu.RLock()
	defer m.vec.mu.RUnlock()
	if c := m.vec.byName[labelValue]; c != nil {
		return c.Value()
	}
	return 0
}

// GaugeValue reports the current value of a gauge or gauge-func family
// (summing labeled children). Unknown names report 0.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.RLock()
	m := r.byName[name]
	r.mu.RUnlock()
	if m == nil {
		return 0
	}
	switch m.kind {
	case kindGauge:
		return float64(m.gauge.Value())
	case kindGaugeFunc:
		var sum float64
		for _, lf := range m.gfns {
			sum += lf.fn()
		}
		return sum
	case kindFloatCounter:
		return m.fcounter.Value()
	default:
		return 0
	}
}

// CounterSnapshot captures the current values of every plain counter and
// counter-vec child, keyed by family name. Callback-backed counters are
// excluded — their owners persist their own state. The snapshot is the
// durable half of warm restart: persist it, then RestoreCounters on boot.
type CounterSnapshot struct {
	Counters map[string]int64            `json:"counters,omitempty"`
	Vecs     map[string]map[string]int64 `json:"vecs,omitempty"`
}

// SnapshotCounters returns the registry's counter state for persistence.
func (r *Registry) SnapshotCounters() CounterSnapshot {
	snap := CounterSnapshot{
		Counters: make(map[string]int64),
		Vecs:     make(map[string]map[string]int64),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.ordered {
		switch m.kind {
		case kindCounter:
			if v := m.counter.Value(); v != 0 {
				snap.Counters[m.name] = v
			}
		case kindCounterVec:
			m.vec.mu.RLock()
			for lv, c := range m.vec.byName {
				if v := c.Value(); v != 0 {
					if snap.Vecs[m.name] == nil {
						snap.Vecs[m.name] = make(map[string]int64)
					}
					snap.Vecs[m.name][lv] = v
				}
			}
			m.vec.mu.RUnlock()
		}
	}
	return snap
}

// RestoreCounters adds a persisted snapshot onto the registry's counters —
// restore-then-count, so live increments made before the snapshot loads are
// kept. Families the snapshot names but the registry lacks (or that are no
// longer plain counters) are skipped: a snapshot from an older build must
// never wedge startup.
func (r *Registry) RestoreCounters(snap CounterSnapshot) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, v := range snap.Counters {
		if m := r.byName[name]; m != nil && m.kind == kindCounter && v > 0 {
			m.counter.Add(v)
		}
	}
	for name, children := range snap.Vecs {
		m := r.byName[name]
		if m == nil || m.kind != kindCounterVec {
			continue
		}
		for lv, v := range children {
			if v > 0 {
				m.vec.With(lv).Add(v)
			}
		}
	}
}

// snapshotMetrics returns the registered families sorted by name.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.RLock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}
