package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, 3); err == nil {
		t.Error("NewFilter(0,3) succeeded")
	}
	if _, err := NewFilter(100, 0); err == nil {
		t.Error("NewFilter(100,0) succeeded")
	}
	f, err := NewFilter(100, 3)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	if f.Bits()%64 != 0 || f.Bits() < 100 {
		t.Errorf("Bits() = %d, want multiple of 64 >= 100", f.Bits())
	}
	if f.K() != 3 {
		t.Errorf("K() = %d", f.K())
	}
}

func TestNewFilterForFPRValidation(t *testing.T) {
	for _, c := range []struct {
		n   int
		fpr float64
	}{{0, 0.01}, {10, 0}, {10, 1}} {
		if _, err := NewFilterForFPR(c.n, c.fpr); err == nil {
			t.Errorf("NewFilterForFPR(%d,%g) succeeded", c.n, c.fpr)
		}
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f, _ := NewFilterForFPR(1000, 0.01)
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://example.com/doc/%d", i)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestFilterFPRNearTarget(t *testing.T) {
	target := 0.01
	f, _ := NewFilterForFPR(5000, target)
	for i := 0; i < 5000; i++ {
		f.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	probes := 50_000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > target*3 {
		t.Errorf("measured FPR %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFPR(); est > target*3 {
		t.Errorf("EstimatedFPR %.4f far above target %.4f", est, target)
	}
}

func TestFilterReset(t *testing.T) {
	f, _ := NewFilter(512, 4)
	f.Add("a")
	f.Reset()
	if f.Contains("a") || f.Count() != 0 || f.FillRatio() != 0 {
		t.Error("Reset did not clear the filter")
	}
}

func TestFilterUnion(t *testing.T) {
	a, _ := NewFilter(512, 4)
	b, _ := NewFilter(512, 4)
	a.Add("x")
	b.Add("y")
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	if !a.Contains("x") || !a.Contains("y") {
		t.Error("Union lost a member")
	}
	c, _ := NewFilter(1024, 4)
	if err := a.Union(c); err == nil {
		t.Error("Union of incompatible sizes succeeded")
	}
	d, _ := NewFilter(512, 5)
	if err := a.Union(d); err == nil {
		t.Error("Union of incompatible k succeeded")
	}
}

func TestFilterSizeBytes(t *testing.T) {
	f, _ := NewFilter(64*10, 3)
	if f.SizeBytes() != 80 {
		t.Errorf("SizeBytes = %d, want 80", f.SizeBytes())
	}
}

func TestCountingAddRemove(t *testing.T) {
	c, _ := NewCounting(4096, 4)
	c.Add("doc")
	if !c.Contains("doc") {
		t.Fatal("Contains false after Add")
	}
	c.Remove("doc")
	if c.Contains("doc") {
		t.Fatal("Contains true after Remove")
	}
	if c.Count() != 0 {
		t.Errorf("Count = %d", c.Count())
	}
}

func TestCountingMultiplicity(t *testing.T) {
	c, _ := NewCounting(4096, 4)
	c.Add("doc")
	c.Add("doc")
	c.Remove("doc")
	if !c.Contains("doc") {
		t.Fatal("second insertion lost after one Remove")
	}
	c.Remove("doc")
	if c.Contains("doc") {
		t.Fatal("still present after matching Removes")
	}
}

func TestCountingValidation(t *testing.T) {
	if _, err := NewCounting(0, 3); err == nil {
		t.Error("NewCounting(0,3) succeeded")
	}
	if _, err := NewCounting(10, 0); err == nil {
		t.Error("NewCounting(10,0) succeeded")
	}
}

func TestCountingReset(t *testing.T) {
	c, _ := NewCounting(1024, 3)
	c.Add("a")
	c.Reset()
	if c.Contains("a") || c.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestCountingRemoveOnEmptyIsSafe(t *testing.T) {
	c, _ := NewCounting(64, 2)
	c.Remove("ghost") // must not underflow or panic
	if c.Count() != 0 {
		t.Errorf("Count = %d", c.Count())
	}
}

// TestQuickFilterNoFalseNegatives: any set of added keys is always reported
// present.
func TestQuickFilterNoFalseNegatives(t *testing.T) {
	f := func(keys []string) bool {
		fl, err := NewFilter(8192, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				t.Errorf("false negative for %q", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountingDeleteConsistency: after adding a multiset of keys and
// removing a random subset (respecting multiplicity), every key with
// remaining insertions is still present.
func TestQuickCountingDeleteConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewCounting(16384, 4)
		if err != nil {
			t.Fatal(err)
		}
		mult := map[string]int{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(60))
			c.Add(k)
			mult[k]++
		}
		for k := range mult {
			drop := rng.Intn(mult[k] + 1)
			for i := 0; i < drop; i++ {
				c.Remove(k)
			}
			mult[k] -= drop
		}
		for k, m := range mult {
			if m > 0 && !c.Contains(k) {
				t.Errorf("seed %d: %q (mult %d) reported absent", seed, k, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFillRatioMonotonic(t *testing.T) {
	f, _ := NewFilter(2048, 3)
	prev := f.FillRatio()
	for i := 0; i < 200; i++ {
		f.Add(fmt.Sprintf("k%d", i))
		cur := f.FillRatio()
		if cur < prev {
			t.Fatalf("fill ratio decreased: %f -> %f", prev, cur)
		}
		prev = cur
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("fill ratio %f out of range", prev)
	}
}
