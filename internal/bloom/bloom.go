// Package bloom implements Bloom filters and counting Bloom filters, the
// compression technique the paper's §5 cites (Fan et al., "Summary Cache",
// SIGCOMM 1998; Michel et al., INFOCOM 2000) for shrinking the browser index
// file: instead of 16-byte MD5 signatures per URL, the proxy can keep one
// small filter per browser, at the cost of a tunable false-positive rate.
//
// The counting variant supports deletion, which the browsers-aware index
// needs because browser caches evict continuously.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a classic Bloom filter with k hash functions derived from a
// single 64-bit FNV-1a hash by the Kirsch–Mitzenmacher double-hashing
// construction.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // inserted element count
}

// NewFilter creates a filter with m bits and k hash functions. m is rounded
// up to a multiple of 64.
func NewFilter(m uint64, k int) (*Filter, error) {
	if m == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: m and k must be positive (m=%d k=%d)", m, k)
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}, nil
}

// NewFilterForFPR sizes a filter for an expected n elements at target false
// positive rate fpr, using the standard optima m = -n·ln(fpr)/ln2² and
// k = m/n·ln2.
func NewFilterForFPR(n int, fpr float64) (*Filter, error) {
	if n <= 0 || fpr <= 0 || fpr >= 1 {
		return nil, fmt.Errorf("bloom: need n>0 and 0<fpr<1 (n=%d fpr=%g)", n, fpr)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewFilter(m, k)
}

// indexes derives the k bit positions for a key.
func indexes(key string, m uint64, k int) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()
	h1 = sum
	// Second independent hash: re-mix with a different constant.
	h2 = (sum ^ 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	h2 |= 1 // force odd so the stride cycles all positions
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key string) {
	h1, h2 := indexes(key, f.m, f.k)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// Contains reports whether the key may be present. False positives occur at
// the configured rate; false negatives never.
func (f *Filter) Contains(key string) bool {
	h1, h2 := indexes(key, f.m, f.k)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Union merges other into f. Both filters must share m and k.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union of incompatible filters (m=%d/%d k=%d/%d)", f.m, other.m, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Bits reports the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K reports the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count reports the number of Add calls since the last Reset.
func (f *Filter) Count() int { return f.n }

// SizeBytes reports the memory footprint of the bit array.
func (f *Filter) SizeBytes() int64 { return int64(len(f.bits) * 8) }

// FillRatio reports the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += popcount(w)
	}
	return float64(ones) / float64(f.m)
}

// EstimatedFPR estimates the current false-positive rate from the fill
// ratio: fpr = fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Equal reports whether f and other have identical parameters and bit
// arrays. Two filters built by inserting the same set of keys into the same
// (m, k) geometry are bit-identical, so Equal detects directory drift between
// a browser's cache and the proxy's believed view of it without shipping the
// URL list (the Summary-Cache digest comparison behind /index/batch).
func (f *Filter) Equal(other *Filter) bool {
	if other == nil || f.m != other.m || f.k != other.k {
		return false
	}
	for i := range f.bits {
		if f.bits[i] != other.bits[i] {
			return false
		}
	}
	return true
}

// marshal header: magic "bf1" + k, then m and n, then the bit words.
const marshalHeaderLen = 4 + 8 + 8

// MarshalBinary serializes the filter (parameters + bit array) for the wire.
func (f *Filter) MarshalBinary() ([]byte, error) {
	if f.k > 255 {
		return nil, fmt.Errorf("bloom: k=%d exceeds the encodable range", f.k)
	}
	buf := make([]byte, marshalHeaderLen+len(f.bits)*8)
	copy(buf, "bf1")
	buf[3] = byte(f.k)
	binary.LittleEndian.PutUint64(buf[4:], f.m)
	binary.LittleEndian.PutUint64(buf[12:], uint64(f.n))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(buf[marshalHeaderLen+i*8:], w)
	}
	return buf, nil
}

// UnmarshalFilter reconstructs a filter serialized by MarshalBinary.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < marshalHeaderLen || string(data[:3]) != "bf1" {
		return nil, fmt.Errorf("bloom: bad filter encoding")
	}
	k := int(data[3])
	m := binary.LittleEndian.Uint64(data[4:])
	n := binary.LittleEndian.Uint64(data[12:])
	words := (m + 63) / 64
	if k < 1 || m == 0 || m%64 != 0 || uint64(len(data)-marshalHeaderLen) != words*8 {
		return nil, fmt.Errorf("bloom: inconsistent filter encoding (m=%d k=%d len=%d)", m, k, len(data))
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: int(n)}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[marshalHeaderLen+i*8:])
	}
	return f, nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Counting is a counting Bloom filter with 8-bit saturating counters,
// supporting Remove. Summary Cache found 4-bit counters sufficient; 8 bits
// keep the implementation simple while staying within the paper's §5 space
// budget discussion (the space estimate helper reports both widths).
type Counting struct {
	counts []uint8
	m      uint64
	k      int
	n      int
}

// NewCounting creates a counting filter with m counters and k hashes.
func NewCounting(m uint64, k int) (*Counting, error) {
	if m == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: m and k must be positive (m=%d k=%d)", m, k)
	}
	return &Counting{counts: make([]uint8, m), m: m, k: k}, nil
}

// Add inserts a key, saturating counters at 255.
func (c *Counting) Add(key string) {
	h1, h2 := indexes(key, c.m, c.k)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counts[pos] < math.MaxUint8 {
			c.counts[pos]++
		}
	}
	c.n++
}

// Remove deletes one insertion of key. Removing a key that was never added
// corrupts the filter (as in any counting Bloom filter); callers guard with
// their own membership bookkeeping. Saturated counters are left untouched,
// trading residual false positives for safety.
func (c *Counting) Remove(key string) {
	h1, h2 := indexes(key, c.m, c.k)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counts[pos] > 0 && c.counts[pos] < math.MaxUint8 {
			c.counts[pos]--
		}
	}
	if c.n > 0 {
		c.n--
	}
}

// Contains reports whether the key may be present.
func (c *Counting) Contains(key string) bool {
	h1, h2 := indexes(key, c.m, c.k)
	for i := 0; i < c.k; i++ {
		pos := (h1 + uint64(i)*h2) % c.m
		if c.counts[pos] == 0 {
			return false
		}
	}
	return true
}

// Count reports the net number of inserted keys.
func (c *Counting) Count() int { return c.n }

// SizeBytes reports the counter-array footprint.
func (c *Counting) SizeBytes() int64 { return int64(len(c.counts)) }

// Reset clears the filter.
func (c *Counting) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
}
