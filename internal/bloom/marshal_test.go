package bloom

import (
	"fmt"
	"testing"
)

func TestMarshalRoundtrip(t *testing.T) {
	f, err := NewFilterForFPR(200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		f.Add(fmt.Sprintf("http://origin/doc/%d", i))
	}
	raw, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFilter(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("roundtrip changed parameters: m=%d/%d k=%d/%d n=%d/%d",
			g.Bits(), f.Bits(), g.K(), f.K(), g.Count(), f.Count())
	}
	if !g.Equal(f) || !f.Equal(g) {
		t.Fatal("roundtrip filter not Equal to original")
	}
	for i := 0; i < 200; i++ {
		if !g.Contains(fmt.Sprintf("http://origin/doc/%d", i)) {
			t.Fatalf("roundtrip lost key %d", i)
		}
	}
}

func TestEqualDetectsDrift(t *testing.T) {
	build := func(n int) *Filter {
		f, err := NewFilter(4096, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("key-%d", i))
		}
		return f
	}
	a, b := build(50), build(50)
	if !a.Equal(b) {
		t.Fatal("same key set, same geometry: must be Equal")
	}
	b.Add("key-extra")
	if a.Equal(b) {
		t.Fatal("one-key drift went undetected")
	}
	small, err := NewFilter(2048, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(small) {
		t.Fatal("different geometry reported Equal")
	}
	if a.Equal(nil) {
		t.Fatal("nil reported Equal")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	f, _ := NewFilter(256, 3)
	raw, _ := f.MarshalBinary()
	cases := map[string][]byte{
		"empty":       {},
		"short":       raw[:marshalHeaderLen-1],
		"bad magic":   append([]byte("xyz"), raw[3:]...),
		"truncated":   raw[:len(raw)-8],
		"trailing":    append(append([]byte{}, raw...), 0),
		"zero k":      func() []byte { d := append([]byte{}, raw...); d[3] = 0; return d }(),
		"unaligned m": func() []byte { d := append([]byte{}, raw...); d[4] = 1; return d }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalRejectsWideK(t *testing.T) {
	f, err := NewFilter(64, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MarshalBinary(); err == nil {
		t.Fatal("k=300 marshaled despite one-byte encoding")
	}
}
