package breaker

import (
	"testing"
	"time"
)

func TestTripAfterThreshold(t *testing.T) {
	var b Breaker
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if tripped := b.Failure(now, 3); tripped {
			t.Fatalf("tripped after %d failures, want 3", i+1)
		}
	}
	if !b.Failure(now, 3) {
		t.Fatal("third failure did not trip")
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	if b.Allow(now, 3, 10*time.Second) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
}

func TestHalfOpenProbeCycle(t *testing.T) {
	var b Breaker
	now := time.Unix(1000, 0)
	b.Trip(now)

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if !b.Allow(now, 3, 10*time.Second) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow(now.Add(time.Second), 3, 10*time.Second) {
		t.Fatal("second probe admitted while one is in flight")
	}

	// Failed probe re-opens without reporting a fresh trip.
	if b.Failure(now, 3) {
		t.Fatal("failed probe reported tripped=true")
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want Open", b.State())
	}

	// Second probe succeeds and re-admits.
	now = now.Add(11 * time.Second)
	if !b.Allow(now, 3, 10*time.Second) {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
	if !b.Success() {
		t.Fatal("probe success did not report readmitted")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want Closed", b.State())
	}
}

func TestStuckProbeReplaced(t *testing.T) {
	var b Breaker
	now := time.Unix(1000, 0)
	b.Trip(now)
	now = now.Add(11 * time.Second)
	if !b.Allow(now, 3, 10*time.Second) {
		t.Fatal("no probe admitted after cooldown")
	}
	// The probe never reports back; after another cooldown a new one goes.
	now = now.Add(11 * time.Second)
	if !b.Allow(now, 3, 10*time.Second) {
		t.Fatal("stuck probe was not replaced after a second cooldown")
	}
}

func TestSuccessResetsFailureCount(t *testing.T) {
	var b Breaker
	now := time.Unix(1000, 0)
	b.Failure(now, 3)
	b.Failure(now, 3)
	if b.Success() {
		t.Fatal("success on a closed breaker reported readmitted")
	}
	if b.ConsecFails() != 0 {
		t.Fatalf("consecFails = %d after success, want 0", b.ConsecFails())
	}
	b.Failure(now, 3)
	b.Failure(now, 3)
	if b.State() != Closed {
		t.Fatal("tripped before reaching the threshold after a reset")
	}
}

func TestDisabledThreshold(t *testing.T) {
	var b Breaker
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		if b.Failure(now, 0) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if !b.Allow(now, 0, time.Second) {
		t.Fatal("disabled breaker refused a request")
	}
}
