// Package breaker implements the three-state circuit breaker used to
// quarantine failing endpoints: browser peers in internal/proxy (where the
// state machine originated) and sibling proxies in internal/federation.
//
//	closed    → normal operation; consecutive failures count up.
//	open      → the endpoint tripped (threshold consecutive failures, or a
//	            forced Trip by a liveness sweep); callers skip it.
//	half-open → after the cooldown one probe request is admitted; a success
//	            closes the breaker, a failure re-opens it.
//
// A Breaker holds no lock and no clock: callers serialize access under their
// own mutex and pass `now` in, which keeps the state machine testable with a
// fake clock and embeddable inside larger locked records.
package breaker

import "time"

// State is a breaker's position in the closed/open/half-open cycle.
type State int

const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state (used in /stats).
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is one endpoint's circuit-breaker record. The zero value is a
// closed breaker. Not safe for concurrent use on its own.
type Breaker struct {
	state       State
	consecFails int
	openedAt    time.Time // when the breaker last opened
	probeAt     time.Time // when the in-flight half-open probe started
	probing     bool
}

// State reports the current position.
func (b *Breaker) State() State { return b.state }

// ConsecFails reports the running count of consecutive failures.
func (b *Breaker) ConsecFails() int { return b.consecFails }

// Allow reports whether a request may be sent. With the breaker open it
// returns false until cooldown elapses from the trip, then transitions to
// half-open and admits exactly one probe (a stuck probe is replaced after
// another cooldown). threshold <= 0 disables the breaker entirely.
func (b *Breaker) Allow(now time.Time, threshold int, cooldown time.Duration) bool {
	if threshold <= 0 {
		return true
	}
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.probeAt = now
		return true
	default: // HalfOpen
		if b.probing && now.Sub(b.probeAt) < cooldown {
			return false // a probe is already in flight
		}
		b.probing = true
		b.probeAt = now
		return true
	}
}

// Success records a served request. readmitted is true when this success
// closed a non-closed breaker — the caller then restores whatever it had
// quarantined in one step.
func (b *Breaker) Success() (readmitted bool) {
	b.consecFails = 0
	if b.state != Closed {
		b.state = Closed
		b.probing = false
		return true
	}
	return false
}

// Failure records a transport failure or integrity violation. tripped is
// true when this failure opened a previously closed breaker — the caller
// then quarantines the endpoint in one step. A failed half-open probe
// silently re-opens (the endpoint was already quarantined).
func (b *Breaker) Failure(now time.Time, threshold int) (tripped bool) {
	b.consecFails++
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = now
		b.probing = false
		return false
	case Closed:
		if threshold > 0 && b.consecFails >= threshold {
			b.state = Open
			b.openedAt = now
			return true
		}
	}
	return false
}

// Trip force-opens the breaker (liveness sweeps use it for endpoints that
// went silent without a failed request).
func (b *Breaker) Trip(now time.Time) {
	b.state = Open
	b.openedAt = now
	b.probing = false
}
