// Package flight implements request coalescing (singleflight) for the live
// serving path: concurrent calls for the same key share one execution of the
// underlying work, so N simultaneous cache misses for a hot document cost a
// single origin/peer resolution instead of N identical ones.
//
// The design differs from the classic golang.org/x/sync/singleflight in two
// ways that matter for a proxy under churn:
//
//   - Waiters honor their own context. A follower whose client disconnects
//     stops waiting immediately; the leader's work continues for the others.
//   - A leader failure does not poison its followers. When the leader's fn
//     returns an error, the in-flight entry is dropped *before* waiters are
//     released, and each released waiter retries: the first to re-enter
//     becomes the new leader and runs its own fn, the rest coalesce onto it.
//     Every caller therefore runs fn at most once, and a transient failure
//     observed by one request is never replayed to requests that could have
//     succeeded on their own.
package flight

import (
	"context"
	"sync"
)

// call is one in-flight execution.
type call[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Group coalesces concurrent Do invocations by key. The zero value is ready
// to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do executes fn for key, coalescing with any concurrent Do of the same key:
// exactly one caller (the leader) runs its fn per round, and every follower
// that joined before completion shares a successful result. shared reports
// whether the returned value/error came from sharing rather than this
// caller's own fn.
//
// On leader failure the followers retry independently (see the package
// comment); on ctx cancellation a waiting follower returns ctx.Err() without
// disturbing the round. fn is not passed the context — it is expected to be
// a closure over the caller's own context, so whichever caller ends up
// leading runs the work under its own cancellation scope.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*call[V])
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					return c.val, true, nil
				}
				// Leader failed. Its entry is already gone; retry —
				// unless this waiter's own context is dead, in which
				// case surface that instead of doing fresh work.
				if ctxErr := ctx.Err(); ctxErr != nil {
					var zero V
					return zero, true, ctxErr
				}
				continue
			case <-ctx.Done():
				var zero V
				return zero, true, ctx.Err()
			}
		}
		c := &call[V]{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()

		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		// Removing before closing guarantees released waiters start a
		// fresh round rather than re-observing this one.
		close(c.done)
		return c.val, false, c.err
	}
}

// Inflight reports the number of keys currently executing (diagnostics).
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
