package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce: N concurrent callers, one execution, everyone shares.
func TestCoalesce(t *testing.T) {
	var g Group[string]
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() (string, error) {
				execs.Add(1)
				<-release
				return "body", nil
			})
			if err != nil || v != "body" {
				t.Errorf("Do = %q, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the callers pile onto the in-flight entry, then release the leader.
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared for %d callers, want %d", got, n-1)
	}
}

// TestDistinctKeysDoNotCoalesce: different keys run independently.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[int]
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), fmt.Sprintf("k%d", i), func() (int, error) {
				execs.Add(1)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("Do(k%d) = %d, %v", i, v, err)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 4 {
		t.Fatalf("fn executed %d times, want 4", got)
	}
}

// TestFollowerCtxCancel: a follower whose context dies stops waiting; the
// leader and remaining followers are unaffected.
func TestFollowerCtxCancel(t *testing.T) {
	var g Group[string]
	release := make(chan struct{})
	started := make(chan struct{})

	go g.Do(context.Background(), "k", func() (string, error) {
		close(started)
		<-release
		return "late", nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func() (string, error) { return "", nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled follower still waiting")
	}

	// The round itself is still healthy.
	got := make(chan string, 1)
	go func() {
		v, _, _ := g.Do(context.Background(), "k", func() (string, error) { return "own", nil })
		got <- v
	}()
	time.Sleep(20 * time.Millisecond) // let the survivor attach to the round
	close(release)
	if v := <-got; v != "late" {
		t.Fatalf("surviving follower got %q, want leader's %q", v, "late")
	}
}

// TestLeaderFailurePromotesFollower: when the leader fails, a follower
// re-runs the work itself instead of inheriting the error.
func TestLeaderFailurePromotesFollower(t *testing.T) {
	var g Group[string]
	var execs atomic.Int64
	failFirst := errors.New("leader blew up")
	release := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (string, error) {
			execs.Add(1)
			<-release
			return "", failFirst
		})
		leaderErr <- err
	}()
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	const followers = 5
	var wg sync.WaitGroup
	results := make(chan string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "k", func() (string, error) {
				execs.Add(1)
				return "recovered", nil
			})
			if err != nil {
				t.Errorf("follower err = %v", err)
				return
			}
			results <- v
		}()
	}
	time.Sleep(20 * time.Millisecond) // let followers attach to the doomed round
	close(release)
	wg.Wait()
	close(results)

	if err := <-leaderErr; !errors.Is(err, failFirst) {
		t.Fatalf("leader err = %v, want its own failure", err)
	}
	for v := range results {
		if v != "recovered" {
			t.Fatalf("follower got %q, want %q", v, "recovered")
		}
	}
	// The failed leader ran once and at least one follower was promoted;
	// released followers that lose the promotion race may also lead a
	// round, but never more than one execution per caller.
	if got := execs.Load(); got < 2 || got > followers+1 {
		t.Fatalf("fn executed %d times, want between 2 and %d", got, followers+1)
	}
}

// TestSequentialRoundsRerun: coalescing only spans concurrent callers; a
// later call runs fresh.
func TestSequentialRoundsRerun(t *testing.T) {
	var g Group[int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			calls++
			return calls, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("round %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
}

// TestConcurrentStress hammers one group from many goroutines across a few
// keys under the race detector.
func TestConcurrentStress(t *testing.T) {
	var g Group[int]
	var wg sync.WaitGroup
	var execs atomic.Int64
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 50; j++ {
				v, _, err := g.Do(context.Background(), key, func() (int, error) {
					execs.Add(1)
					if j%7 == 3 {
						return 0, errors.New("transient")
					}
					return i % 4, nil
				})
				if err == nil && v != i%4 {
					t.Errorf("key %s got %d", key, v)
				}
			}
		}()
	}
	wg.Wait()
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d after all callers returned", g.Inflight())
	}
}
