// Package federation scales the browsers-aware proxy horizontally: N
// bapsproxy instances each own a rendezvous-hash slice of the client
// population and exchange periodic Bloom digests of their aggregate
// directories (proxy cache + browser index), Summary-Cache style — the
// paper's own §5 remedy for the single-proxy index ceiling. A miss in one
// proxy checks its siblings' digests, confirms a candidate with
// GET /peer/locate (digests lie at the filter's false-positive rate), and
// relays the document from the sibling before falling to the origin.
//
// Failure model: digests are pushed, so a dead sibling's summary simply
// stops arriving — once it is older than StaleAfter the sibling drops out
// of candidate selection without any probe traffic. Locate/fetch failures
// additionally feed a per-sibling circuit breaker (the same three-state
// machine browsers get, internal/breaker), so a sibling that is up but
// misbehaving is quarantined too and re-admitted by a half-open probe.
package federation

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"baps/internal/bloom"
	"baps/internal/breaker"
)

// DigestMsg is the body of POST /peer/digest: one proxy's summary of every
// URL it can resolve locally (cache + aggregate browser directory).
type DigestMsg struct {
	// From is the sender's advertised base URL (its cluster identity).
	From string `json:"from"`
	// Digest is the base64 encoding of bloom.Filter.MarshalBinary (the
	// PR 5 "bf1" format) over the sender's resolvable URL set.
	Digest string `json:"digest"`
	// Docs is the number of URLs the filter was built over.
	Docs int `json:"docs"`
}

// Config parameterizes one proxy's membership in a cluster.
type Config struct {
	// Self is this proxy's advertised base URL (its identity on the wire).
	Self string
	// Peers are the sibling proxies' base URLs (Self excluded).
	Peers []string
	// Interval is the digest push period (default 1s).
	Interval time.Duration
	// DriftThreshold forces an early push once this many local mutations
	// (cache stores, index deltas) accumulate since the last one
	// (default 256; <=0 keeps the default).
	DriftThreshold int
	// StaleAfter distrusts a sibling digest older than this — the pushed
	// summaries are the liveness signal, so staleness quarantines the
	// sibling out of candidate selection (default 4×Interval).
	StaleAfter time.Duration
	// FPR is the digest filter's false-positive target (default 0.01).
	FPR float64
	// MinDocs floors the filter sizing so tiny directories still get a
	// usefully-sized filter (default 1024).
	MinDocs int
	// BreakerThreshold trips a sibling's circuit breaker after this many
	// consecutive locate/fetch failures (<=0 disables; default 3).
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay (default 5s).
	BreakerCooldown time.Duration
	// Client performs digest pushes (the caller's peer-traffic client).
	Client *http.Client
	// Logger, when non-nil, receives exchange-loop warnings.
	Logger *slog.Logger
	// OnDigestSent/OnDigestReceived, when non-nil, are called once per
	// successful digest push/receipt (metric hooks).
	OnDigestSent     func()
	OnDigestReceived func()
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 256
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 4 * c.Interval
	}
	if c.FPR <= 0 || c.FPR >= 1 {
		c.FPR = 0.01
	}
	if c.MinDocs <= 0 {
		c.MinDocs = 1024
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
}

// sibling is the mutable cluster-side record of one peer proxy, guarded by
// Cluster.mu.
type sibling struct {
	url     string
	filter  *bloom.Filter // latest digest received; nil until the first push
	updated time.Time     // when that digest arrived
	docs    int           // sender-reported URL count behind the filter
	br      breaker.Breaker

	confirms int64 // locates answered "held"
	fps      int64 // digest said maybe, locate said no (Bloom false positive)
	fetches  int64 // documents actually relayed from this sibling
	failures int64 // transport failures against this sibling
}

// Cluster is one proxy's view of its federation: sibling membership, their
// latest digests, and the exchange loop pushing this proxy's own digest out.
type Cluster struct {
	cfg   Config
	nodes []string // Self + Peers, the HRW placement universe

	// source snapshots the local resolvable URL set (cache keys + indexed
	// docs); called once per digest build, outside any Cluster lock.
	source func() []string

	mu            sync.Mutex
	sibs          map[string]*sibling
	dirty         int // local mutations since the last push
	digestsSent   int64
	digestsRecv   int64
	digestRejects int64
	pushFailures  int64

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a cluster membership from cfg; source snapshots the local
// resolvable URL set for digest builds. Call Start to begin exchanging.
func New(cfg Config, source func() []string) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("federation: empty Self URL")
	}
	cfg.fillDefaults()
	c := &Cluster{
		cfg:    cfg,
		nodes:  append([]string{cfg.Self}, cfg.Peers...),
		source: source,
		sibs:   make(map[string]*sibling, len(cfg.Peers)),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			return nil, fmt.Errorf("federation: self %q listed as peer", p)
		}
		if _, dup := c.sibs[p]; dup {
			return nil, fmt.Errorf("federation: duplicate peer %q", p)
		}
		c.sibs[p] = &sibling{url: p}
	}
	return c, nil
}

// Start launches the digest exchange loop (idempotent via Stop only).
func (c *Cluster) Start() {
	c.wg.Add(1)
	go c.loop()
}

// Stop terminates the exchange loop and waits for it.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Nodes returns the full placement universe (self + peers).
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Self returns this proxy's cluster identity.
func (c *Cluster) Self() string { return c.cfg.Self }

// Owner reports which cluster node owns key under rendezvous hashing (client
// placement; the load generator uses the same function to aim its clients).
func (c *Cluster) Owner(key string) string { return Owner(c.nodes, key) }

// loop pushes digests every Interval, plus early whenever NoteMutation
// crosses the drift threshold.
func (c *Cluster) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	// Announce immediately so siblings learn about us without waiting a
	// full interval.
	c.PushDigests()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.kick:
		}
		c.PushDigests()
	}
}

// NoteMutation records n local directory/cache mutations; crossing the drift
// threshold schedules an early digest push (non-blocking).
func (c *Cluster) NoteMutation(n int) {
	c.mu.Lock()
	c.dirty += n
	fire := c.dirty >= c.cfg.DriftThreshold
	if fire {
		c.dirty = 0
	}
	c.mu.Unlock()
	if fire {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
}

// PushDigests builds one digest over the local resolvable set and pushes it
// to every sibling. Push failures are counted but do not touch the breaker:
// the receiving side's staleness clock is the authoritative liveness signal.
func (c *Cluster) PushDigests() {
	urls := c.source()
	n := len(urls)
	if n < c.cfg.MinDocs {
		n = c.cfg.MinDocs
	}
	f, err := bloom.NewFilterForFPR(n, c.cfg.FPR)
	if err != nil {
		return
	}
	for _, u := range urls {
		f.Add(u)
	}
	raw, err := f.MarshalBinary()
	if err != nil {
		return
	}
	body, err := json.Marshal(DigestMsg{
		From:   c.cfg.Self,
		Digest: base64.StdEncoding.EncodeToString(raw),
		Docs:   len(urls),
	})
	if err != nil {
		return
	}
	c.mu.Lock()
	c.dirty = 0
	peers := make([]string, 0, len(c.sibs))
	for u := range c.sibs {
		peers = append(peers, u)
	}
	c.mu.Unlock()
	for _, peer := range peers {
		req, err := http.NewRequest(http.MethodPost, peer+"/peer/digest", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			c.mu.Lock()
			c.pushFailures++
			c.mu.Unlock()
			continue
		}
		resp.Body.Close()
		c.mu.Lock()
		c.digestsSent++
		c.mu.Unlock()
		if c.cfg.OnDigestSent != nil {
			c.cfg.OnDigestSent()
		}
	}
}

// Observe ingests a sibling's pushed digest (raw bloom marshal bytes). An
// unknown sender or a corrupt filter is rejected. A digest arrival also
// refreshes the sibling's liveness clock.
func (c *Cluster) Observe(from string, raw []byte) error {
	f, err := bloom.UnmarshalFilter(raw)
	if err != nil {
		c.mu.Lock()
		c.digestRejects++
		c.mu.Unlock()
		return fmt.Errorf("federation: bad digest from %s: %w", from, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sib, ok := c.sibs[from]
	if !ok {
		c.digestRejects++
		return fmt.Errorf("federation: digest from unknown sibling %s", from)
	}
	sib.filter = f
	sib.docs = f.Count()
	sib.updated = time.Now()
	c.digestsRecv++
	if c.cfg.OnDigestReceived != nil {
		// Called under mu; the hook is an atomic counter increment.
		c.cfg.OnDigestReceived()
	}
	return nil
}

// ObserveDocs is Observe with the sender-reported URL count (the filter's
// internal count is lost by marshaling).
func (c *Cluster) ObserveDocs(from string, raw []byte, docs int) error {
	if err := c.Observe(from, raw); err != nil {
		return err
	}
	c.mu.Lock()
	if sib, ok := c.sibs[from]; ok {
		sib.docs = docs
	}
	c.mu.Unlock()
	return nil
}

// Candidates returns the siblings whose fresh digest claims url, ordered by
// rendezvous rank (so concurrent requesters spread over equally-claiming
// siblings deterministically). Stale-digest and open-breaker siblings are
// skipped — except that an open breaker past its cooldown admits the caller
// as a half-open probe, exactly like browser peers.
func (c *Cluster) Candidates(url string) []string {
	now := time.Now()
	c.mu.Lock()
	var out []string
	for _, sib := range c.sibs {
		if sib.filter == nil || now.Sub(sib.updated) > c.cfg.StaleAfter {
			continue // never heard from it, or its summary went stale
		}
		if !sib.filter.Contains(url) {
			continue
		}
		if !sib.br.Allow(now, c.cfg.BreakerThreshold, c.cfg.BreakerCooldown) {
			continue
		}
		out = append(out, sib.url)
	}
	c.mu.Unlock()
	if len(out) > 1 {
		out = RankNodes(out, url)
	}
	return out
}

// NoteConfirm records a locate that answered "held" (breaker success).
func (c *Cluster) NoteConfirm(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sib, ok := c.sibs[peer]; ok {
		sib.confirms++
		sib.br.Success()
	}
}

// NoteFalsePositive records a digest membership claim the sibling's locate
// denied. The sibling answered, so this is a breaker success — only the
// filter lied, at its configured rate.
func (c *Cluster) NoteFalsePositive(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sib, ok := c.sibs[peer]; ok {
		sib.fps++
		sib.br.Success()
	}
}

// NoteFetch records a document actually relayed from the sibling.
func (c *Cluster) NoteFetch(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sib, ok := c.sibs[peer]; ok {
		sib.fetches++
		sib.br.Success()
	}
}

// NoteFailure records a transport failure against the sibling, reporting
// whether this failure tripped its breaker.
func (c *Cluster) NoteFailure(peer string) (tripped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sib, ok := c.sibs[peer]
	if !ok {
		return false
	}
	sib.failures++
	return sib.br.Failure(time.Now(), c.cfg.BreakerThreshold)
}

// SiblingStat is one sibling's exported record (per-proxy /stats).
type SiblingStat struct {
	URL            string  `json:"url"`
	Breaker        string  `json:"breaker"`
	DigestAgeSec   float64 `json:"digest_age_sec"` // -1 until the first digest
	DigestDocs     int     `json:"digest_docs"`
	Stale          bool    `json:"stale"`
	Confirms       int64   `json:"locate_confirms"`
	FalsePositives int64   `json:"locate_false_positives"`
	Fetches        int64   `json:"fetches"`
	Failures       int64   `json:"failures"`
}

// Stats is the cluster-membership snapshot exported via /stats.
type Stats struct {
	Self            string        `json:"self"`
	Nodes           int           `json:"nodes"`
	DigestsSent     int64         `json:"digests_sent"`
	DigestsReceived int64         `json:"digests_received"`
	DigestRejects   int64         `json:"digest_rejects"`
	PushFailures    int64         `json:"push_failures"`
	Siblings        []SiblingStat `json:"siblings"`
}

// Snapshot exports the membership state.
func (c *Cluster) Snapshot() Stats {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Self:            c.cfg.Self,
		Nodes:           len(c.nodes),
		DigestsSent:     c.digestsSent,
		DigestsReceived: c.digestsRecv,
		DigestRejects:   c.digestRejects,
		PushFailures:    c.pushFailures,
	}
	for _, sib := range c.sibs {
		age := -1.0
		stale := true
		if sib.filter != nil {
			age = now.Sub(sib.updated).Seconds()
			stale = now.Sub(sib.updated) > c.cfg.StaleAfter
		}
		st.Siblings = append(st.Siblings, SiblingStat{
			URL:            sib.url,
			Breaker:        sib.br.State().String(),
			DigestAgeSec:   age,
			DigestDocs:     sib.docs,
			Stale:          stale,
			Confirms:       sib.confirms,
			FalsePositives: sib.fps,
			Fetches:        sib.fetches,
			Failures:       sib.failures,
		})
	}
	// Stable order for tests and readable /stats.
	for i := 1; i < len(st.Siblings); i++ {
		for j := i; j > 0 && st.Siblings[j].URL < st.Siblings[j-1].URL; j-- {
			st.Siblings[j], st.Siblings[j-1] = st.Siblings[j-1], st.Siblings[j]
		}
	}
	return st
}
