package federation

// Rendezvous (highest-random-weight) hashing places keys on cluster nodes:
// every node scores hash(node, key) and the highest score owns the key. When
// a node dies, only its keys move — each to the survivor that already scored
// second for it — which is exactly the client-placement stability the
// federation needs under sibling churn (no ring metadata, no token shuffle).

// fnv1a64 is FNV-1a over two strings separated by a NUL (inlined to keep the
// scorer allocation-free).
func fnv1a64(node, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// hrwScore mixes the FNV hash once more (splitmix64 finalizer) so nearby
// node/key strings spread across the full 64-bit range.
func hrwScore(node, key string) uint64 {
	x := fnv1a64(node, key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node with the highest rendezvous score for key, or ""
// when nodes is empty. Ties break toward the lexically earlier node so every
// caller agrees.
func Owner(nodes []string, key string) string {
	best := ""
	var bestScore uint64
	for _, n := range nodes {
		s := hrwScore(n, key)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// RankNodes orders nodes by descending rendezvous score for key (the
// requester's preference order over siblings holding a document).
func RankNodes(nodes []string, key string) []string {
	out := append([]string(nil), nodes...)
	// Insertion sort: cluster sizes are single digits.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && hrwScore(out[j], key) > hrwScore(out[j-1], key); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
