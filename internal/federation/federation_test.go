package federation

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/bloom"
)

func mustDigest(t *testing.T, urls ...string) []byte {
	t.Helper()
	f, err := bloom.NewFilterForFPR(max(len(urls), 64), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range urls {
		f.Add(u)
	}
	raw, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: ""}, nil); err == nil {
		t.Fatal("empty Self accepted")
	}
	if _, err := New(Config{Self: "http://a", Peers: []string{"http://a"}}, nil); err == nil {
		t.Fatal("self listed as peer accepted")
	}
	if _, err := New(Config{Self: "http://a", Peers: []string{"http://b", "http://b"}}, nil); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

func TestObserveAndCandidates(t *testing.T) {
	c, err := New(Config{
		Self:       "http://self",
		Peers:      []string{"http://b", "http://c"},
		StaleAfter: time.Hour,
	}, func() []string { return nil })
	if err != nil {
		t.Fatal(err)
	}

	// Before any digest arrives, nobody is a candidate.
	if got := c.Candidates("http://origin/doc1"); len(got) != 0 {
		t.Fatalf("candidates before any digest: %v", got)
	}

	// Unknown sender is rejected.
	if err := c.Observe("http://stranger", mustDigest(t, "x")); err == nil {
		t.Fatal("digest from unknown sibling accepted")
	}
	// Corrupt filter is rejected.
	if err := c.Observe("http://b", []byte("not a filter")); err == nil {
		t.Fatal("corrupt digest accepted")
	}

	// b claims doc1, c claims doc2.
	if err := c.ObserveDocs("http://b", mustDigest(t, "http://origin/doc1"), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveDocs("http://c", mustDigest(t, "http://origin/doc2"), 1); err != nil {
		t.Fatal(err)
	}

	if got := c.Candidates("http://origin/doc1"); len(got) != 1 || got[0] != "http://b" {
		t.Fatalf("candidates for doc1 = %v, want [http://b]", got)
	}
	if got := c.Candidates("http://origin/doc2"); len(got) != 1 || got[0] != "http://c" {
		t.Fatalf("candidates for doc2 = %v, want [http://c]", got)
	}
	if got := c.Candidates("http://origin/absent"); len(got) != 0 {
		t.Fatalf("candidates for absent doc = %v, want none", got)
	}

	st := c.Snapshot()
	if st.DigestsReceived != 2 || st.DigestRejects != 2 {
		t.Fatalf("received=%d rejects=%d, want 2 and 2", st.DigestsReceived, st.DigestRejects)
	}
	if st.Siblings[0].DigestDocs != 1 {
		t.Fatalf("sibling docs = %d, want sender-reported 1", st.Siblings[0].DigestDocs)
	}
}

func TestStaleDigestQuarantines(t *testing.T) {
	c, err := New(Config{
		Self:       "http://self",
		Peers:      []string{"http://b"},
		StaleAfter: 30 * time.Millisecond,
	}, func() []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("http://b", mustDigest(t, "http://origin/doc1")); err != nil {
		t.Fatal(err)
	}
	if got := c.Candidates("http://origin/doc1"); len(got) != 1 {
		t.Fatalf("fresh digest produced no candidate: %v", got)
	}
	time.Sleep(60 * time.Millisecond)
	if got := c.Candidates("http://origin/doc1"); len(got) != 0 {
		t.Fatalf("stale digest still produced candidates: %v", got)
	}
	st := c.Snapshot()
	if !st.Siblings[0].Stale {
		t.Fatal("snapshot does not mark the sibling stale")
	}
	// A fresh digest re-admits it.
	if err := c.Observe("http://b", mustDigest(t, "http://origin/doc1")); err != nil {
		t.Fatal(err)
	}
	if got := c.Candidates("http://origin/doc1"); len(got) != 1 {
		t.Fatalf("re-freshened sibling not re-admitted: %v", got)
	}
}

func TestBreakerQuarantinesAndProbes(t *testing.T) {
	c, err := New(Config{
		Self:             "http://self",
		Peers:            []string{"http://b"},
		StaleAfter:       time.Hour,
		BreakerThreshold: 2,
		BreakerCooldown:  40 * time.Millisecond,
	}, func() []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("http://b", mustDigest(t, "http://origin/doc1")); err != nil {
		t.Fatal(err)
	}

	if tripped := c.NoteFailure("http://b"); tripped {
		t.Fatal("breaker tripped on first failure, threshold is 2")
	}
	if !c.NoteFailure("http://b") {
		t.Fatal("second failure did not trip")
	}
	if got := c.Candidates("http://origin/doc1"); len(got) != 0 {
		t.Fatalf("tripped sibling still a candidate: %v", got)
	}

	// After the cooldown, exactly one caller is admitted as a probe.
	time.Sleep(60 * time.Millisecond)
	if got := c.Candidates("http://origin/doc1"); len(got) != 1 {
		t.Fatalf("no half-open probe admitted after cooldown: %v", got)
	}
	if got := c.Candidates("http://origin/doc1"); len(got) != 0 {
		t.Fatalf("second probe admitted while one in flight: %v", got)
	}
	// Probe succeeds: the sibling is re-admitted.
	c.NoteConfirm("http://b")
	if got := c.Candidates("http://origin/doc1"); len(got) != 1 {
		t.Fatalf("sibling not re-admitted after probe success: %v", got)
	}
}

func TestFalsePositiveIsNotAFailure(t *testing.T) {
	c, err := New(Config{
		Self:             "http://self",
		Peers:            []string{"http://b"},
		StaleAfter:       time.Hour,
		BreakerThreshold: 1,
	}, func() []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe("http://b", mustDigest(t, "http://origin/doc1")); err != nil {
		t.Fatal(err)
	}
	// Digest claimed, locate denied: the sibling answered, so even a
	// threshold-1 breaker must stay closed.
	for i := 0; i < 5; i++ {
		c.NoteFalsePositive("http://b")
	}
	if got := c.Candidates("http://origin/doc1"); len(got) != 1 {
		t.Fatalf("false positives tripped the breaker: %v", got)
	}
	st := c.Snapshot()
	if st.Siblings[0].FalsePositives != 5 {
		t.Fatalf("fps = %d, want 5", st.Siblings[0].FalsePositives)
	}
}

// TestPushAndDriftKick runs the real exchange loop against a stub sibling:
// the startup push arrives immediately, the long interval never fires, and a
// NoteMutation burst past the drift threshold forces an early second push.
func TestPushAndDriftKick(t *testing.T) {
	var pushes atomic.Int64
	var lastMsg atomic.Value // DigestMsg
	sib := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/peer/digest" {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		body, _ := io.ReadAll(r.Body)
		var msg DigestMsg
		if err := json.Unmarshal(body, &msg); err != nil {
			t.Errorf("bad digest body: %v", err)
		}
		lastMsg.Store(msg)
		pushes.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer sib.Close()

	c, err := New(Config{
		Self:           "http://self",
		Peers:          []string{sib.URL},
		Interval:       time.Hour, // only the startup push and kicks fire
		DriftThreshold: 4,
	}, func() []string { return []string{"http://origin/doc1", "http://origin/doc2"} })
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for pushes.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("saw %d pushes, want %d", pushes.Load(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(1)

	msg := lastMsg.Load().(DigestMsg)
	if msg.From != "http://self" || msg.Docs != 2 {
		t.Fatalf("digest msg = %+v", msg)
	}
	raw, err := base64.StdEncoding.DecodeString(msg.Digest)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bloom.UnmarshalFilter(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Contains("http://origin/doc1") || !f.Contains("http://origin/doc2") {
		t.Fatal("pushed digest does not contain the source URLs")
	}

	// Below the threshold: no push.
	c.NoteMutation(3)
	time.Sleep(30 * time.Millisecond)
	if pushes.Load() != 1 {
		t.Fatalf("sub-threshold mutations triggered a push (%d)", pushes.Load())
	}
	// Crossing it: early push.
	c.NoteMutation(1)
	waitFor(2)

	st := c.Snapshot()
	if st.DigestsSent < 2 {
		t.Fatalf("digests_sent = %d, want >= 2", st.DigestsSent)
	}
}
