package federation

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("client-%d", i)
		first := Owner(nodes, key)
		if first == "" {
			t.Fatalf("Owner(%q) returned empty", key)
		}
		if again := Owner(nodes, key); again != first {
			t.Fatalf("Owner(%q) unstable: %q then %q", key, first, again)
		}
	}
	if Owner(nil, "x") != "" {
		t.Fatal("Owner with no nodes should return empty")
	}
}

func TestOwnerDistribution(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[Owner(nodes, fmt.Sprintf("client-%d", i))]++
	}
	for _, node := range nodes {
		got := counts[node]
		// Fair share is 1000; allow a wide band — we only care that no
		// node is starved or hot by construction.
		if got < n/8 || got > n/2 {
			t.Fatalf("node %s owns %d of %d keys (counts %v)", node, got, n, counts)
		}
	}
}

func TestOwnerStabilityUnderNodeLoss(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	survivors := nodes[:3] // d dies
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("client-%d", i)
		before := Owner(nodes, key)
		after := Owner(survivors, key)
		if before != nodes[3] && before != after {
			t.Fatalf("key %q moved from surviving node %q to %q", key, before, after)
		}
		if before == nodes[3] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned zero keys; distribution is broken")
	}
}

func TestRankNodesAgreesWithOwner(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("doc-%d", i)
		ranked := RankNodes(nodes, key)
		if len(ranked) != len(nodes) {
			t.Fatalf("RankNodes returned %d nodes, want %d", len(ranked), len(nodes))
		}
		if ranked[0] != Owner(nodes, key) {
			t.Fatalf("RankNodes[0] = %q, Owner = %q for key %q", ranked[0], Owner(nodes, key), key)
		}
		for j := 1; j < len(ranked); j++ {
			if hrwScore(ranked[j], key) > hrwScore(ranked[j-1], key) {
				t.Fatalf("RankNodes not descending at %d for key %q: %v", j, key, ranked)
			}
		}
	}
}
