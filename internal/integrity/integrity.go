// Package integrity implements the paper's §6.1 data-integrity scheme: a
// digital watermark that lets a requesting browser verify that a document
// received from a peer browser was not tampered with.
//
// The watermark for a document D is the MD5 message digest of D encrypted
// with the proxy server's private key — i.e. an RSA signature over MD5,
// exactly the construction the paper describes ({MD5(D)}K⁻¹proxy). The proxy
// produces the watermark when it first obtains the document from the origin
// or an upper-level proxy and hands it to clients alongside the document;
// any client can verify with the proxy's public key, and no client can forge
// a matching watermark because only the proxy knows the private key.
//
// MD5 is used because the paper (2002) specifies it (RFC 1321); it is of
// course not collision-resistant by modern standards, and the construction
// here is parameterized only in key size, not hash, to stay faithful to the
// protocol being reproduced.
package integrity

import (
	"crypto"
	"crypto/md5"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
)

// Signer holds the proxy's private key and produces watermarks.
type Signer struct {
	priv *rsa.PrivateKey
}

// NewSigner generates a fresh RSA key pair of the given bit size (use at
// least 2048 outside tests).
func NewSigner(bits int) (*Signer, error) {
	if bits < 512 {
		return nil, fmt.Errorf("integrity: key size %d too small", bits)
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("integrity: generate key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// NewSignerFromKey wraps an existing private key.
func NewSignerFromKey(priv *rsa.PrivateKey) (*Signer, error) {
	if priv == nil {
		return nil, errors.New("integrity: nil private key")
	}
	return &Signer{priv: priv}, nil
}

// Public returns the verification key to distribute to clients.
func (s *Signer) Public() *rsa.PublicKey { return &s.priv.PublicKey }

// Digest computes the MD5 message digest of a document.
func Digest(doc []byte) []byte {
	sum := md5.Sum(doc)
	return sum[:]
}

// Watermark signs the document's MD5 digest with the proxy's private key.
func (s *Signer) Watermark(doc []byte) ([]byte, error) {
	return s.WatermarkDigest(Digest(doc))
}

// WatermarkDigest signs an already-computed MD5 digest. The live proxy
// computes the digest incrementally while the body streams off the wire, so
// signing must not force a second pass over the document.
func (s *Signer) WatermarkDigest(digest []byte) ([]byte, error) {
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.priv, crypto.MD5, digest)
	if err != nil {
		return nil, fmt.Errorf("integrity: sign: %w", err)
	}
	return sig, nil
}

// ErrTampered is returned by Verify when the document does not match its
// watermark.
var ErrTampered = errors.New("integrity: watermark verification failed")

// Verify checks a document against its watermark under the proxy's public
// key. A nil error means the document is exactly the one the proxy signed.
func Verify(pub *rsa.PublicKey, doc, watermark []byte) error {
	return VerifyDigest(pub, Digest(doc), watermark)
}

// VerifyDigest checks an already-computed MD5 digest against a watermark
// (the streamed-delivery twin of Verify).
func VerifyDigest(pub *rsa.PublicKey, digest, watermark []byte) error {
	if pub == nil {
		return errors.New("integrity: nil public key")
	}
	if err := rsa.VerifyPKCS1v15(pub, crypto.MD5, digest, watermark); err != nil {
		return ErrTampered
	}
	return nil
}

// MarshalPublicKey encodes the proxy's public key as PEM (PKIX), the format
// the live proxy serves at /pubkey.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("integrity: marshal public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}), nil
}

// ParsePublicKey decodes a PEM (PKIX) RSA public key.
func ParsePublicKey(pemBytes []byte) (*rsa.PublicKey, error) {
	block, _ := pem.Decode(pemBytes)
	if block == nil {
		return nil, errors.New("integrity: no PEM block found")
	}
	key, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("integrity: parse public key: %w", err)
	}
	pub, ok := key.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("integrity: not an RSA key: %T", key)
	}
	return pub, nil
}

// MarshalPrivateKey encodes the signing key as PEM (PKCS#1) — the format the
// crash-safe proxy persists under its data directory so watermarks issued
// before a restart keep verifying after it.
func (s *Signer) MarshalPrivateKey() []byte {
	return pem.EncodeToMemory(&pem.Block{
		Type:  "RSA PRIVATE KEY",
		Bytes: x509.MarshalPKCS1PrivateKey(s.priv),
	})
}

// ParsePrivateKey decodes a PEM (PKCS#1) RSA private key.
func ParsePrivateKey(pemBytes []byte) (*rsa.PrivateKey, error) {
	block, _ := pem.Decode(pemBytes)
	if block == nil {
		return nil, errors.New("integrity: no PEM block found")
	}
	priv, err := x509.ParsePKCS1PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("integrity: parse private key: %w", err)
	}
	return priv, nil
}
