package integrity

import (
	"bytes"
	"crypto/md5"
	"testing"
	"testing/quick"
)

func testSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner(1024) // small key: tests only
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

func TestNewSignerRejectsTinyKeys(t *testing.T) {
	if _, err := NewSigner(256); err == nil {
		t.Fatal("256-bit key accepted")
	}
}

func TestNewSignerFromKey(t *testing.T) {
	if _, err := NewSignerFromKey(nil); err == nil {
		t.Fatal("nil key accepted")
	}
	s := testSigner(t)
	s2, err := NewSignerFromKey(s.priv)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Public() != s.Public() {
		t.Fatal("wrapped signer has different public key")
	}
}

func TestWatermarkRoundTrip(t *testing.T) {
	s := testSigner(t)
	doc := []byte("a web document body")
	mark, err := s.Watermark(doc)
	if err != nil {
		t.Fatalf("Watermark: %v", err)
	}
	if err := Verify(s.Public(), doc, mark); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	s := testSigner(t)
	doc := []byte("original content served by the origin")
	mark, err := s.Watermark(doc)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), doc...)
	tampered[0] ^= 1
	if err := Verify(s.Public(), tampered, mark); err != ErrTampered {
		t.Fatalf("tampered doc verified: %v", err)
	}
	// A truncated document also fails.
	if err := Verify(s.Public(), doc[:len(doc)-1], mark); err != ErrTampered {
		t.Fatalf("truncated doc verified: %v", err)
	}
	// A corrupted watermark fails.
	badMark := append([]byte(nil), mark...)
	badMark[3] ^= 0xFF
	if err := Verify(s.Public(), doc, badMark); err != ErrTampered {
		t.Fatalf("bad watermark verified: %v", err)
	}
}

func TestVerifyWrongKeyFails(t *testing.T) {
	s1 := testSigner(t)
	s2 := testSigner(t)
	doc := []byte("doc")
	mark, _ := s1.Watermark(doc)
	if err := Verify(s2.Public(), doc, mark); err != ErrTampered {
		t.Fatal("watermark verified under the wrong key")
	}
	if err := Verify(nil, doc, mark); err == nil {
		t.Fatal("nil public key accepted")
	}
}

func TestNoClientCanForge(t *testing.T) {
	// The §6.1 argument: without the proxy's private key a peer cannot
	// produce a matching watermark for altered content. A forger who
	// only controls the document and an arbitrary signature always
	// fails verification.
	s := testSigner(t)
	doc := []byte("forged content")
	forged := make([]byte, 128) // 1024-bit signature size
	for i := range forged {
		forged[i] = byte(i * 7)
	}
	if err := Verify(s.Public(), doc, forged); err != ErrTampered {
		t.Fatal("forged watermark verified")
	}
}

func TestDigestIsMD5(t *testing.T) {
	doc := []byte("digest me")
	want := md5.Sum(doc)
	if !bytes.Equal(Digest(doc), want[:]) {
		t.Fatal("Digest is not MD5")
	}
}

func TestPublicKeyPEMRoundTrip(t *testing.T) {
	s := testSigner(t)
	pemBytes, err := MarshalPublicKey(s.Public())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	pub, err := ParsePublicKey(pemBytes)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pub.N.Cmp(s.Public().N) != 0 || pub.E != s.Public().E {
		t.Fatal("round-tripped key differs")
	}
}

func TestParsePublicKeyErrors(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not pem")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParsePublicKey([]byte("-----BEGIN PUBLIC KEY-----\nAAAA\n-----END PUBLIC KEY-----\n")); err == nil {
		t.Error("bad DER accepted")
	}
}

// TestQuickWatermarkAllDocs: every document round-trips, and any single-bit
// flip is caught.
func TestQuickWatermarkAllDocs(t *testing.T) {
	s := testSigner(t)
	f := func(doc []byte, flip uint) bool {
		mark, err := s.Watermark(doc)
		if err != nil {
			t.Errorf("Watermark: %v", err)
			return false
		}
		if err := Verify(s.Public(), doc, mark); err != nil {
			t.Errorf("Verify: %v", err)
			return false
		}
		if len(doc) == 0 {
			return true
		}
		tampered := append([]byte(nil), doc...)
		tampered[int(flip%uint(len(doc)))] ^= byte(1 + flip%255)
		if err := Verify(s.Public(), tampered, mark); err != ErrTampered {
			t.Errorf("flip survived verification")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
