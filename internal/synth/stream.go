package synth

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"baps/internal/intern"
	"baps/internal/trace"
)

// GenStream generates a profile's trace incrementally as a trace.Stream,
// with memory bounded by the touched document universe and the client
// population — never by the request count. The emitted request sequence is
// bit-identical to Generate for the same profile (same RNG draw order, same
// hash-derived sizes, same first-appearance document IDs); the difference is
// purely representational: documents live as integer keys rather than URL
// strings, so a 10^6-client trace streams straight into a .btr writer
// without ever being resident.
//
// Emitted requests carry dense Doc IDs and empty URL strings (like a .btr
// stream without its symbol table); URLAt regenerates the URL for a given
// document ID on demand, in first-appearance order, for symbol-table
// emission after the stream drains.
type GenStream struct {
	p       Profile
	rng     *rand.Rand
	shared  *zipf
	private *zipf
	clients *zipf
	sizer   *sizer
	meanIA  float64
	now     float64
	emitted int
	window  int

	// Document registry, dense in first-appearance order. sizedVer is the
	// version whose realized size is cached (-1 = none yet): sizes must be
	// sticky per version so a recency re-reference sees the fetched size.
	docIdx   intern.U64Map // docKey -> dense doc ID
	keys     []int64       // doc ID -> docKey
	ver      []int64       // doc ID -> current origin version
	sizedVer []int64       // doc ID -> version the cached size realizes
	sizes    []int64       // doc ID -> realized size

	// Per-client recency rings over doc IDs, flattened to one slab.
	ring    []int32
	ringPos []int32
	ringLen []int32
}

// NewStream validates the profile and readies a generator.
func NewStream(p Profile) (*GenStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := p.RecencyWindow
	if window <= 0 {
		window = 64
	}
	g := &GenStream{
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		shared:  newZipf(p.SharedDocs, p.ZipfAlpha),
		clients: newZipf(p.Clients, p.ClientZipfAlpha),
		sizer:   newSizer(p),
		meanIA:  p.DurationSec / float64(p.Requests),
		window:  window,
		ring:    make([]int32, p.Clients*window),
		ringPos: make([]int32, p.Clients),
		ringLen: make([]int32, p.Clients),
	}
	if p.PrivateDocs > 0 {
		g.private = newZipf(p.PrivateDocs, p.PrivateZipfAlpha)
	}
	return g, nil
}

// Name implements trace.Stream.
func (g *GenStream) Name() string { return g.p.Name }

// NumClients implements trace.Stream; the population is known up front.
func (g *GenStream) NumClients() int { return g.p.Clients }

// NumDocs implements trace.Stream; it grows as generation discovers
// documents and is final only once Next has returned io.EOF.
func (g *GenStream) NumDocs() int { return len(g.keys) }

// NumRequests reports the total request count the stream will emit.
func (g *GenStream) NumRequests() int { return g.p.Requests }

// Close implements trace.Stream.
func (g *GenStream) Close() error { return nil }

// URLAt regenerates the URL of a generated document ID (valid for IDs below
// NumDocs at the time of the call).
func (g *GenStream) URLAt(doc int) string { return g.urlFor(g.keys[doc]) }

// Next implements trace.Stream.
func (g *GenStream) Next(buf []trace.Request) (int, error) {
	remaining := g.p.Requests - g.emitted
	if remaining <= 0 {
		return 0, io.EOF
	}
	n := len(buf)
	if n > remaining {
		n = remaining
	}
	if n == 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		g.gen(&buf[i])
	}
	g.emitted += n
	return n, nil
}

// gen produces the next request. The RNG draw order replicates Generate
// exactly (including the short-circuited draws: no recency draw while the
// ring is empty, no shared/private draw on a recency re-reference).
func (g *GenStream) gen(r *trace.Request) {
	p := &g.p
	g.now += g.rng.ExpFloat64() * g.meanIA
	client := g.clients.sample(g.rng)

	var id int32
	rankFrac := 0.5 // neutral for recency re-references
	base := client * g.window
	rl := int(g.ringLen[client])
	if rl > 0 && g.rng.Float64() < p.RecencyFraction {
		id = g.ring[base+pickRecent(g.rng, rl, int(g.ringPos[client]), p.RecencyGeomP)]
		rankFrac = -1 // size comes from the per-version cache below
	} else if p.PrivateDocs == 0 || g.rng.Float64() < p.SharedFraction {
		rank := g.shared.sample(g.rng)
		id = g.intern(int64(rank))
		rankFrac = float64(rank) / float64(p.SharedDocs)
	} else {
		rank := g.private.sample(g.rng)
		key := int64(p.SharedDocs) + int64(client)*int64(p.PrivateDocs) + int64(rank)
		id = g.intern(key)
		rankFrac = float64(rank) / float64(p.PrivateDocs)
	}

	if g.rng.Float64() < p.ModifyRate {
		g.ver[id]++
	}
	if g.sizedVer[id] != g.ver[id] {
		sz := g.sizer.size(g.urlFor(g.keys[id]), g.ver[id])
		if p.SizeRankBias != 0 && rankFrac >= 0 {
			sz = clipSize(int64(float64(sz)*math.Exp(p.SizeRankBias*(rankFrac-0.5))), p.MinDocBytes, p.MaxDocBytes)
		}
		g.sizes[id] = sz
		g.sizedVer[id] = g.ver[id]
	}

	if rl < g.window {
		g.ring[base+rl] = id
		g.ringLen[client] = int32(rl + 1)
		g.ringPos[client] = int32(rl)
	} else {
		pos := (int(g.ringPos[client]) + 1) % g.window
		g.ringPos[client] = int32(pos)
		g.ring[base+pos] = id
	}

	*r = trace.Request{
		Time:   g.now,
		Client: client,
		Doc:    intern.ID(id),
		Size:   g.sizes[id],
	}
}

// intern maps a document key to its dense first-appearance ID, registering
// fresh documents.
func (g *GenStream) intern(key int64) int32 {
	id := int32(len(g.keys))
	if resident, present := g.docIdx.PutIfAbsent(uint64(key), int64(id)); present {
		return int32(resident)
	}
	g.keys = append(g.keys, key)
	g.ver = append(g.ver, 0)
	g.sizedVer = append(g.sizedVer, -1)
	g.sizes = append(g.sizes, 0)
	return id
}

// urlFor regenerates the URL a document key denotes: shared keys are ranks
// in [0, SharedDocs); private keys pack (client, rank) above them.
func (g *GenStream) urlFor(key int64) string {
	if key < int64(g.p.SharedDocs) {
		return fmt.Sprintf("http://shared.example/d%d", key)
	}
	k := key - int64(g.p.SharedDocs)
	pd := int64(g.p.PrivateDocs)
	return fmt.Sprintf("http://c%d.example/d%d", k/pd, k%pd)
}
