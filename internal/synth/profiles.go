package synth

import (
	"fmt"
	"sort"
	"strings"
)

// The five calibrated profiles below stand in for the paper's Table 1 traces.
// The calibration goal is shape, not identity: each profile reproduces its
// archived trace's scale (clients, request volume, total gigabytes) and the
// locality structure the paper's results depend on — the NLANR proxies see
// pre-filtered, low-locality streams with the lowest byte-hit ceiling of the
// set; the BU client traces show strong per-client locality, with BU-98
// markedly less cacheable than BU-95 (the access-variation growth the paper
// cites from Barford et al.); CA*netII has only 3 clients, the paper's limit
// case where the browsers-aware gain drops below one percent.
//
// Calibration was done against the paper's qualitative targets (see
// EXPERIMENTS.md): max hit/byte-hit ceilings ordered as in Table 1,
// browsers-aware vs proxy-and-local-browser gaps of a few points that shrink
// as caches grow, and near-zero gain for the 3-client trace.

func profileNLANRuc() Profile {
	return Profile{
		Name:        "nlanr-uc",
		Clients:     120,
		Requests:    240_000,
		DurationSec: 24 * 3600, // one day's log

		SharedDocs:  350_000,
		PrivateDocs: 3_000,

		SharedFraction:   0.72,
		ZipfAlpha:        0.45, // upper-level proxy: popularity flattened by child caches
		PrivateZipfAlpha: 0.55,
		RecencyFraction:  0.03, // little client locality survives the lower tiers
		RecencyWindow:    64,
		RecencyGeomP:     0.25,

		MeanDocKB:    9,
		SizeSigma:    1.5,
		MinDocBytes:  128,
		MaxDocBytes:  8 << 20,
		ModifyRate:   0.035,
		SizeRankBias: 2.0, // hot documents much smaller → low byte ceiling

		ClientZipfAlpha: 1.0,
		Seed:            0x5EED0001,
	}
}

func profileNLANRbo1() Profile {
	return Profile{
		Name:        "nlanr-bo1",
		Clients:     80,
		Requests:    160_000,
		DurationSec: 24 * 3600,

		SharedDocs:  140_000,
		PrivateDocs: 2_500,

		SharedFraction:   0.75,
		ZipfAlpha:        0.55,
		PrivateZipfAlpha: 0.65,
		RecencyFraction:  0.08,
		RecencyWindow:    64,
		RecencyGeomP:     0.25,

		MeanDocKB:    10,
		SizeSigma:    1.4,
		MinDocBytes:  128,
		MaxDocBytes:  8 << 20,
		ModifyRate:   0.02,
		SizeRankBias: 1.3,

		ClientZipfAlpha: 1.0,
		Seed:            0x5EED0002,
	}
}

func profileBU95() Profile {
	return Profile{
		Name:        "bu-95",
		Clients:     150,
		Requests:    200_000,
		DurationSec: 60 * 24 * 3600, // two months

		SharedDocs:  120_000,
		PrivateDocs: 1_400,

		SharedFraction:   0.70,
		ZipfAlpha:        0.62,
		PrivateZipfAlpha: 0.75,
		RecencyFraction:  0.18, // 1995 client population: strong locality
		RecencyWindow:    128,
		RecencyGeomP:     0.30,

		MeanDocKB:    7, // 1995-era documents are small
		SizeSigma:    1.3,
		MinDocBytes:  128,
		MaxDocBytes:  4 << 20,
		ModifyRate:   0.012,
		SizeRankBias: 1.6,

		ClientZipfAlpha: 0.8,
		Seed:            0x5EED0003,
	}
}

func profileBU98() Profile {
	return Profile{
		Name:        "bu-98",
		Clients:     160,
		Requests:    200_000,
		DurationSec: 60 * 24 * 3600,

		SharedDocs:  190_000, // 1998: far more servers → more one-timers
		PrivateDocs: 2_200,

		SharedFraction:   0.62,
		ZipfAlpha:        0.55,
		PrivateZipfAlpha: 0.70,
		RecencyFraction:  0.10,
		RecencyWindow:    128,
		RecencyGeomP:     0.30,

		MeanDocKB:    11,
		SizeSigma:    1.5,
		MinDocBytes:  128,
		MaxDocBytes:  8 << 20,
		ModifyRate:   0.02,
		SizeRankBias: 1.2,

		ClientZipfAlpha: 0.8,
		Seed:            0x5EED0004,
	}
}

func profileCAnetII() Profile {
	return Profile{
		Name:        "canet2",
		Clients:     3, // the paper's limit case: a 3-client parent cache
		Requests:    60_000,
		DurationSec: 2 * 24 * 3600, // two concatenated days

		SharedDocs:  60_000,
		PrivateDocs: 6_000,

		SharedFraction:   0.55, // little overlap among the 3 children
		ZipfAlpha:        0.60,
		PrivateZipfAlpha: 0.65,
		RecencyFraction:  0.08,
		RecencyWindow:    64,
		RecencyGeomP:     0.25,

		MeanDocKB:    10,
		SizeSigma:    1.4,
		MinDocBytes:  128,
		MaxDocBytes:  8 << 20,
		ModifyRate:   0.018,
		SizeRankBias: 1.4,

		ClientZipfAlpha: 0.2,
		Seed:            0x5EED0005,
	}
}

// MillionClients returns the 10^6-browser scale-proof profile (DESIGN.md
// §16): the paper's structural knobs at three orders of magnitude more
// clients than Table 1, tuned so the touched document universe (and with it
// the simulator's per-document state) stays in the single-digit millions.
// The recency window is deliberately small — the generator keeps one ring
// per client, and at this population every ring slot costs 4 MB overall.
// It is not part of Profiles(): the figure sweeps would take hours on it;
// it exists for tracegen -profile synth-1m and the out-of-core replay proof.
func MillionClients() Profile {
	return Profile{
		Name:        "synth-1m",
		Clients:     1_000_000,
		Requests:    20_000_000,
		DurationSec: 24 * 3600,

		SharedDocs:  2_000_000,
		PrivateDocs: 8,

		SharedFraction:   0.80,
		ZipfAlpha:        0.70,
		PrivateZipfAlpha: 0.60,
		RecencyFraction:  0.15,
		RecencyWindow:    8,
		RecencyGeomP:     0.30,

		MeanDocKB:    9,
		SizeSigma:    1.4,
		MinDocBytes:  128,
		MaxDocBytes:  8 << 20,
		ModifyRate:   0.01,
		SizeRankBias: 1.2,

		ClientZipfAlpha: 0.6,
		Seed:            0x5EED1000,
	}
}

// Profiles returns the five calibrated paper-trace profiles in Table 1 order.
func Profiles() []Profile {
	return []Profile{
		profileNLANRuc(),
		profileNLANRbo1(),
		profileBU95(),
		profileBU98(),
		profileCAnetII(),
	}
}

// ProfileNames returns the known profile names, sorted.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// ByName looks up a profile by name. The synth-1m scale profile resolves
// here too, though Profiles() excludes it from the sweep set.
func ByName(name string) (Profile, error) {
	if m := MillionClients(); name == m.Name {
		return m, nil
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown profile %q (known: %s)", name, strings.Join(ProfileNames(), ", "))
}

// Scaled returns a copy of p with the request count (and document universes,
// proportionally) scaled by factor, preserving the locality structure. It is
// used by benchmarks and tests that need a faster run of the same workload
// shape. Factors above 1 are allowed.
func Scaled(p Profile, factor float64) Profile {
	if factor <= 0 || factor == 1 {
		return p
	}
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	p.Requests = scale(p.Requests)
	p.SharedDocs = scale(p.SharedDocs)
	p.PrivateDocs = scale(p.PrivateDocs)
	p.DurationSec *= factor
	return p
}
