package synth

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"baps/internal/trace"
)

func smallProfile() Profile {
	p := profileNLANRuc()
	p.Requests = 5_000
	p.SharedDocs = 2_000
	p.PrivateDocs = 100
	p.Clients = 20
	return p
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallProfile())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Requests) != 5_000 {
		t.Fatalf("got %d requests, want 5000", len(tr.Requests))
	}
	if tr.NumClients != 20 {
		t.Fatalf("NumClients = %d", tr.NumClients)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("same profile+seed produced different traces")
	}
	p := smallProfile()
	p.Seed++
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full profiles are slow in -short mode")
	}
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := Generate(p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			s := trace.Compute(tr)
			if s.MaxHitRatio < 0.15 || s.MaxHitRatio > 0.85 {
				t.Errorf("MaxHitRatio %.3f outside plausible web-trace range", s.MaxHitRatio)
			}
			if s.SharedRequests == 0 && p.Clients > 1 {
				t.Error("no cross-client sharing generated")
			}
			if s.UniqueDocs < 100 {
				t.Errorf("only %d unique docs", s.UniqueDocs)
			}
		})
	}
}

func TestProfileRegistry(t *testing.T) {
	names := ProfileNames()
	if len(names) != 5 {
		t.Fatalf("got %d profiles, want 5: %v", len(names), names)
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("ByName(%q).Name = %q", n, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Clients = 0 },
		func(p *Profile) { p.Requests = 0 },
		func(p *Profile) { p.SharedDocs = 0 },
		func(p *Profile) { p.PrivateDocs = -1 },
		func(p *Profile) { p.SharedFraction = 1.5 },
		func(p *Profile) { p.RecencyFraction = -0.1 },
		func(p *Profile) { p.PrivateDocs = 0; p.SharedFraction = 0.5 },
		func(p *Profile) { p.ZipfAlpha = 0 },
		func(p *Profile) { p.MeanDocKB = 0 },
		func(p *Profile) { p.MinDocBytes = 0 },
		func(p *Profile) { p.MaxDocBytes = 1 },
		func(p *Profile) { p.ModifyRate = 1 },
		func(p *Profile) { p.DurationSec = 0 },
	}
	for i, mut := range mutations {
		p := smallProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid profile", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := newZipf(1000, 0.8)
	counts := make([]int, 1000)
	n := 200_000
	for i := 0; i < n; i++ {
		counts[z.sample(rng)]++
	}
	// Rank 1 should be ~2^0.8 ≈ 1.74x more popular than rank 2.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("rank1/rank2 ratio = %.2f, want ≈ 1.74", ratio)
	}
	// Top 10% of docs should dominate.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / float64(n); frac < 0.5 {
		t.Errorf("top-10%% docs got only %.2f of requests", frac)
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := newZipf(10, 0)
	counts := make([]int, 10)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[z.sample(rng)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d: frac %.3f, want ≈0.1", i, frac)
		}
	}
}

func TestSizerDeterministicAndClipped(t *testing.T) {
	p := smallProfile()
	s := newSizer(p)
	a := s.size("http://x/1", 0)
	if b := s.size("http://x/1", 0); b != a {
		t.Fatalf("sizer not deterministic: %d vs %d", a, b)
	}
	if v1 := s.size("http://x/1", 1); v1 == a {
		t.Log("version bump produced identical size (possible but unlikely)")
	}
	for i := 0; i < 5000; i++ {
		sz := s.size("http://y/"+string(rune('a'+i%26)), int64(i))
		if sz < p.MinDocBytes || sz > p.MaxDocBytes {
			t.Fatalf("size %d outside [%d,%d]", sz, p.MinDocBytes, p.MaxDocBytes)
		}
	}
}

func TestSizerMeanApproximatesTarget(t *testing.T) {
	p := smallProfile()
	p.SizeSigma = 1.0
	s := newSizer(p)
	var sum float64
	n := 50_000
	for i := 0; i < n; i++ {
		sum += float64(s.size(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), 0))
	}
	mean := sum / float64(n) / 1024
	if mean < p.MeanDocKB*0.6 || mean > p.MeanDocKB*1.6 {
		t.Errorf("mean doc size %.1f KB, want ≈ %.1f KB", mean, p.MeanDocKB)
	}
}

func TestScaled(t *testing.T) {
	p := profileBU95()
	half := Scaled(p, 0.5)
	if half.Requests != p.Requests/2 || half.SharedDocs != p.SharedDocs/2 {
		t.Fatalf("Scaled(0.5): %d/%d", half.Requests, half.SharedDocs)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("scaled profile invalid: %v", err)
	}
	if same := Scaled(p, 1); !reflect.DeepEqual(same, p) {
		t.Fatal("Scaled(1) changed the profile")
	}
	tiny := Scaled(p, 1e-9)
	if tiny.Requests < 1 || tiny.SharedDocs < 1 {
		t.Fatal("Scaled floor broken")
	}
}

// TestQuickRecencyLocality: with full recency the generated trace's max hit
// ratio is higher than with none, all else equal — the knob does what it
// claims.
func TestQuickRecencyLocality(t *testing.T) {
	f := func(seed int64) bool {
		base := smallProfile()
		base.Seed = seed
		base.Requests = 3_000
		base.ModifyRate = 0

		lo := base
		lo.RecencyFraction = 0
		hi := base
		hi.RecencyFraction = 0.6

		trLo, err := Generate(lo)
		if err != nil {
			t.Fatal(err)
		}
		trHi, err := Generate(hi)
		if err != nil {
			t.Fatal(err)
		}
		hrLo := trace.Compute(trLo).MaxHitRatio
		hrHi := trace.Compute(trHi).MaxHitRatio
		if hrHi+0.02 < hrLo {
			t.Errorf("seed %d: recency 0.6 gave HR %.3f < recency 0 HR %.3f", seed, hrHi, hrLo)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSizeRankBiasMakesHotDocsSmaller(t *testing.T) {
	p := smallProfile()
	p.Requests = 20_000
	p.RecencyFraction = 0
	p.ModifyRate = 0
	p.SizeRankBias = 2.0
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Hot docs (many repeats) should average smaller than one-timers.
	counts := map[string]int{}
	size := map[string]int64{}
	for _, r := range tr.Requests {
		counts[r.URL]++
		size[r.URL] = r.Size
	}
	var hotSum, coldSum float64
	var hotN, coldN int
	for url, n := range counts {
		if n >= 5 {
			hotSum += float64(size[url])
			hotN++
		} else if n == 1 {
			coldSum += float64(size[url])
			coldN++
		}
	}
	if hotN < 20 || coldN < 20 {
		t.Skipf("insufficient hot/cold mass: %d/%d", hotN, coldN)
	}
	hotMean, coldMean := hotSum/float64(hotN), coldSum/float64(coldN)
	if hotMean >= coldMean {
		t.Errorf("SizeRankBias=2: hot mean %.0f >= cold mean %.0f", hotMean, coldMean)
	}
}

func TestPickRecentBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ {
		for pos := 0; pos < n; pos++ {
			for i := 0; i < 200; i++ {
				idx := pickRecent(rng, n, pos, 0.3)
				if idx < 0 || idx >= n {
					t.Fatalf("pickRecent(n=%d,pos=%d) = %d out of range", n, pos, idx)
				}
			}
		}
	}
	// Degenerate geometric parameter falls back to the default.
	if idx := pickRecent(rng, 4, 2, 0); idx < 0 || idx >= 4 {
		t.Fatalf("fallback geomP broken: %d", idx)
	}
}
