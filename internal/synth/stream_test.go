package synth

import (
	"io"
	"reflect"
	"testing"

	"baps/internal/intern"
	"baps/internal/trace"
)

// drain collects a GenStream into a slice using varied batch sizes.
func drain(t *testing.T, g *GenStream, batch int) []trace.Request {
	t.Helper()
	var out []trace.Request
	buf := make([]trace.Request, batch)
	for {
		n, err := g.Next(buf)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf[:n]...)
	}
}

// The streaming generator must be bit-identical to Generate: same times,
// clients, sizes, and first-appearance document IDs, with URLAt regenerating
// the exact URL strings.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		p = Scaled(p, 0.02)
		want, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewStream(p)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, g, 777) // batch size must not matter
		if len(got) != len(want.Requests) {
			t.Fatalf("%s: %d requests, want %d", p.Name, len(got), len(want.Requests))
		}
		if g.NumClients() != want.NumClients || g.NumDocs() != want.NumDocs() {
			t.Fatalf("%s: shape %d/%d, want %d/%d",
				p.Name, g.NumClients(), g.NumDocs(), want.NumClients, want.NumDocs())
		}
		for i, w := range want.Requests {
			r := got[i]
			if r.Time != w.Time || r.Client != w.Client || r.Doc != w.Doc || r.Size != w.Size {
				t.Fatalf("%s: request %d diverged: got %+v want %+v", p.Name, i, r, w)
			}
		}
		for doc := 0; doc < g.NumDocs(); doc++ {
			if gu, wu := g.URLAt(doc), want.Syms.String(intern.ID(doc)); gu != wu {
				t.Fatalf("%s: URLAt(%d) = %q, want %q", p.Name, doc, gu, wu)
			}
		}
	}
}

// The streamed trace must satisfy the same statistics as the in-memory one.
func TestStreamStatsMatchGenerate(t *testing.T) {
	p := Scaled(profileCAnetII(), 0.05)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Compute(tr)
	g, err := NewStream(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.StreamStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestMillionClientsProfileValid(t *testing.T) {
	p := MillionClients()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, err := ByName("synth-1m"); err != nil || got.Clients != p.Clients {
		t.Fatalf("ByName(synth-1m) = %+v, %v", got, err)
	}
	for _, q := range Profiles() {
		if q.Name == p.Name {
			t.Fatal("synth-1m must stay out of the sweep set")
		}
	}
}
