// Package synth generates seeded synthetic web traces that stand in for the
// paper's five archived traces (NLANR-uc, NLANR-bo1, BU-95, BU-98, CA*netII),
// none of which remain publicly retrievable.
//
// Every effect the paper measures is a function of reference-stream
// structure rather than of URL identity, so the generator exposes exactly
// those structural knobs:
//
//   - document popularity skew (Zipf over a shared universe — the source of
//     cross-client sharing the browsers-aware proxy exploits);
//   - per-client private working sets (documents only one client requests);
//   - temporal locality (clients re-reference their own recent documents
//     with geometrically distributed stack distance);
//   - heavy-tailed body sizes (lognormal, clipped);
//   - document modification (a re-requested document occasionally changed
//     size at the origin; the simulator counts such hits as misses, §3.2);
//   - client activity skew (Zipf over clients).
//
// Generation is fully deterministic given Profile.Seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"baps/internal/trace"
)

// Profile parameterizes one synthetic trace.
type Profile struct {
	// Name labels the resulting trace.
	Name string

	// Clients is the number of client machines.
	Clients int

	// Requests is the total number of requests to generate.
	Requests int

	// DurationSec is the wall-clock span of the trace; request times are
	// exponential arrivals filling this span.
	DurationSec float64

	// SharedDocs is the size of the globally shared document universe.
	SharedDocs int

	// PrivateDocs is the per-client private document universe size.
	PrivateDocs int

	// SharedFraction is the probability that a fresh (non-recency)
	// request targets the shared universe rather than the client's
	// private one.
	SharedFraction float64

	// ZipfAlpha is the popularity skew of the shared universe (0 < α;
	// web traces typically show 0.6–0.9).
	ZipfAlpha float64

	// PrivateZipfAlpha is the skew within each private universe.
	PrivateZipfAlpha float64

	// RecencyFraction is the probability that a request re-references a
	// document from the client's own recent history (temporal locality
	// beyond popularity).
	RecencyFraction float64

	// RecencyWindow is the length of the per-client history ring.
	RecencyWindow int

	// RecencyGeomP is the geometric parameter for stack-distance
	// selection in the history (larger → tighter locality).
	RecencyGeomP float64

	// MeanDocKB and SizeSigma parameterize the lognormal body size:
	// mean MeanDocKB kilobytes with log-space standard deviation
	// SizeSigma.
	MeanDocKB float64
	SizeSigma float64

	// MinDocBytes and MaxDocBytes clip the size distribution.
	MinDocBytes int64
	MaxDocBytes int64

	// ModifyRate is the per-access probability that the requested
	// document was modified (new size) since its previous delivery.
	ModifyRate float64

	// SizeRankBias correlates size with popularity: a document at
	// popularity rank fraction f ∈ [0,1] (0 = hottest) has its size
	// multiplied by exp(SizeRankBias · (f − 0.5)). Positive values make
	// popular documents smaller, the correlation measured in real web
	// traces — it is what pushes byte hit ratios below hit ratios.
	// Zero disables the bias.
	SizeRankBias float64

	// ClientZipfAlpha skews request volume across clients (0 = uniform).
	ClientZipfAlpha float64

	// Seed makes the trace reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	switch {
	case p.Clients <= 0:
		return fmt.Errorf("synth %s: Clients must be > 0", p.Name)
	case p.Requests <= 0:
		return fmt.Errorf("synth %s: Requests must be > 0", p.Name)
	case p.SharedDocs <= 0:
		return fmt.Errorf("synth %s: SharedDocs must be > 0", p.Name)
	case p.PrivateDocs < 0:
		return fmt.Errorf("synth %s: PrivateDocs must be >= 0", p.Name)
	case p.SharedFraction < 0 || p.SharedFraction > 1:
		return fmt.Errorf("synth %s: SharedFraction out of [0,1]", p.Name)
	case p.RecencyFraction < 0 || p.RecencyFraction > 1:
		return fmt.Errorf("synth %s: RecencyFraction out of [0,1]", p.Name)
	case p.PrivateDocs == 0 && p.SharedFraction < 1:
		return fmt.Errorf("synth %s: PrivateDocs=0 requires SharedFraction=1", p.Name)
	case p.ZipfAlpha <= 0 || p.PrivateZipfAlpha < 0:
		return fmt.Errorf("synth %s: Zipf exponents must be positive", p.Name)
	case p.MeanDocKB <= 0 || p.SizeSigma < 0:
		return fmt.Errorf("synth %s: size distribution invalid", p.Name)
	case p.MinDocBytes <= 0 || p.MaxDocBytes < p.MinDocBytes:
		return fmt.Errorf("synth %s: size clip range invalid", p.Name)
	case p.ModifyRate < 0 || p.ModifyRate >= 1:
		return fmt.Errorf("synth %s: ModifyRate out of [0,1)", p.Name)
	case p.DurationSec <= 0:
		return fmt.Errorf("synth %s: DurationSec must be > 0", p.Name)
	}
	return nil
}

// Generate produces the synthetic trace for a profile.
func Generate(p Profile) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sharedZipf := newZipf(p.SharedDocs, p.ZipfAlpha)
	var privateZipf *zipf
	if p.PrivateDocs > 0 {
		privateZipf = newZipf(p.PrivateDocs, p.PrivateZipfAlpha)
	}
	clientPick := newZipf(p.Clients, p.ClientZipfAlpha)

	// Per-document version counters; only modified documents appear here.
	versions := make(map[string]int64)
	// Realized sizes (rank bias applied once per version): a recency
	// re-reference must see the same size as the original fetch.
	sizeOf := make(map[string]int64)
	versionOf := make(map[string]int64)
	// Per-client recency rings.
	window := p.RecencyWindow
	if window <= 0 {
		window = 64
	}
	rings := make([][]string, p.Clients)
	ringPos := make([]int, p.Clients)

	sizer := newSizer(p)

	tr := &trace.Trace{Name: p.Name, NumClients: p.Clients}
	tr.Requests = make([]trace.Request, 0, p.Requests)
	meanIA := p.DurationSec / float64(p.Requests)
	now := 0.0
	for i := 0; i < p.Requests; i++ {
		now += rng.ExpFloat64() * meanIA
		client := clientPick.sample(rng)

		var url string
		rankFrac := 0.5 // neutral for recency re-references (bias already applied at first fetch)
		ring := rings[client]
		if len(ring) > 0 && rng.Float64() < p.RecencyFraction {
			url = ring[pickRecent(rng, len(ring), ringPos[client], p.RecencyGeomP)]
			rankFrac = -1 // sentinel: size comes from sizeOf cache below
		} else if p.PrivateDocs == 0 || rng.Float64() < p.SharedFraction {
			rank := sharedZipf.sample(rng)
			url = fmt.Sprintf("http://shared.example/d%d", rank)
			rankFrac = float64(rank) / float64(p.SharedDocs)
		} else {
			rank := privateZipf.sample(rng)
			url = fmt.Sprintf("http://c%d.example/d%d", client, rank)
			rankFrac = float64(rank) / float64(p.PrivateDocs)
		}

		if rng.Float64() < p.ModifyRate {
			versions[url]++
		}
		size, known := sizeOf[url]
		if !known || versions[url] != versionOf[url] {
			base := sizer.size(url, versions[url])
			if p.SizeRankBias != 0 && rankFrac >= 0 {
				base = clipSize(int64(float64(base)*math.Exp(p.SizeRankBias*(rankFrac-0.5))), p.MinDocBytes, p.MaxDocBytes)
			}
			size = base
			sizeOf[url] = size
			versionOf[url] = versions[url]
		}

		tr.Requests = append(tr.Requests, trace.Request{
			Time:   now,
			Client: client,
			URL:    url,
			Size:   size,
		})

		// Record in the recency ring.
		if len(rings[client]) < window {
			rings[client] = append(rings[client], url)
			ringPos[client] = len(rings[client]) - 1
		} else {
			ringPos[client] = (ringPos[client] + 1) % window
			rings[client][ringPos[client]] = url
		}
	}
	tr.Intern()
	return tr, nil
}

// pickRecent selects an index in the ring with geometric stack distance:
// distance 0 is the most recent entry (at position pos), distance d wraps
// backwards.
func pickRecent(rng *rand.Rand, n, pos int, geomP float64) int {
	if geomP <= 0 || geomP >= 1 {
		geomP = 0.3
	}
	d := 0
	for rng.Float64() > geomP && d < n-1 {
		d++
	}
	idx := pos - d
	for idx < 0 {
		idx += n
	}
	return idx
}

// zipf samples from a Zipf(alpha) distribution over [0,n) via inverse-CDF
// binary search. Unlike math/rand.Zipf it supports 0 < alpha <= 1, the
// regime measured for web document popularity. alpha == 0 yields the uniform
// distribution.
type zipf struct {
	cdf []float64
}

func newZipf(n int, alpha float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		if alpha == 0 {
			sum++
		} else {
			sum += 1 / math.Pow(float64(i+1), alpha)
		}
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// sizer produces deterministic lognormal document sizes from (url, version),
// with no storage: the size is a pure hash of its inputs.
type sizer struct {
	mu, sigma float64
	min, max  int64
	seed      uint64
}

func newSizer(p Profile) *sizer {
	meanBytes := p.MeanDocKB * 1024
	// For a lognormal, mean = exp(mu + sigma^2/2).
	mu := math.Log(meanBytes) - p.SizeSigma*p.SizeSigma/2
	return &sizer{mu: mu, sigma: p.SizeSigma, min: p.MinDocBytes, max: p.MaxDocBytes, seed: uint64(p.Seed)}
}

func (s *sizer) size(url string, version int64) int64 {
	h := s.seed
	for i := 0; i < len(url); i++ {
		h = (h ^ uint64(url[i])) * 0x100000001B3
	}
	h ^= uint64(version) * 0x9E3779B97F4A7C15
	u1 := float64(splitmix(&h)>>11) / float64(1<<53)
	u2 := float64(splitmix(&h)>>11) / float64(1<<53)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	// Box–Muller.
	normal := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	size := int64(math.Exp(s.mu + s.sigma*normal))
	if size < s.min {
		size = s.min
	}
	if size > s.max {
		size = s.max
	}
	return size
}

func clipSize(v, min, max int64) int64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

func splitmix(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
