package intern

import "math/bits"

// U64Map is a compact open-addressing hash map from uint64 keys to int64
// values, built for the out-of-core simulation paths where Go's built-in
// map overhead (~50 B/entry) dominates resident memory at 10^6-client
// scale: the streaming Stats pass tracks one (client, doc) pair per first
// sight, and the streaming synthetic generator interns integer document
// keys. Entries cost 16 B plus load-factor slack (~24 B/entry at the 0.75
// max load), with no per-entry pointers for the GC to trace.
//
// The zero key is reserved internally; callers may still use key 0 — it is
// remapped to a sentinel slot. The zero value of U64Map is ready to use.
// Not safe for concurrent use.
type U64Map struct {
	keys []uint64
	vals []int64
	n    int // live entries, excluding the zero-key slot

	zeroSet bool
	zeroVal int64
}

// u64Hash is a strong 64-bit mixer (splitmix64 finalizer).
func u64Hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len reports the number of stored keys.
func (m *U64Map) Len() int {
	n := m.n
	if m.zeroSet {
		n++
	}
	return n
}

// Get returns the value for key and whether it is present.
func (m *U64Map) Get(key uint64) (int64, bool) {
	if key == 0 {
		return m.zeroVal, m.zeroSet
	}
	if len(m.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	i := u64Hash(key) & mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Put stores value under key, replacing any previous value.
func (m *U64Map) Put(key uint64, val int64) {
	if key == 0 {
		m.zeroSet = true
		m.zeroVal = val
		return
	}
	if m.n >= len(m.keys)-len(m.keys)/4 { // load factor 0.75
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := u64Hash(key) & mask
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = val
			return
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		}
		i = (i + 1) & mask
	}
}

// PutIfAbsent stores value under key unless the key is already present.
// It returns the resident value and whether the key was already present —
// the one-probe idiom the streaming Stats pass uses for first-sight
// (client, doc) tracking.
func (m *U64Map) PutIfAbsent(key uint64, val int64) (int64, bool) {
	if key == 0 {
		if m.zeroSet {
			return m.zeroVal, true
		}
		m.zeroSet = true
		m.zeroVal = val
		return val, false
	}
	if m.n >= len(m.keys)-len(m.keys)/4 {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := u64Hash(key) & mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return val, false
		}
		i = (i + 1) & mask
	}
}

// Reset drops all entries but keeps the allocated slots for reuse.
func (m *U64Map) Reset() {
	for i := range m.keys {
		m.keys[i] = 0
	}
	m.n = 0
	m.zeroSet = false
	m.zeroVal = 0
}

// grow doubles the table (minimum 16 slots) and rehashes.
func (m *U64Map) grow() {
	newSize := 16
	if len(m.keys) > 0 {
		newSize = len(m.keys) * 2
	}
	// Guard against a non-power-of-two slice sneaking in.
	if bits.OnesCount(uint(newSize)) != 1 {
		newSize = 1 << bits.Len(uint(newSize))
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, newSize)
	m.vals = make([]int64, newSize)
	mask := uint64(newSize - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := u64Hash(k) & mask
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldVals[j]
	}
}
