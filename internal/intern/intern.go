// Package intern provides URL ⇄ dense document-ID interning for the hot
// request path. Every layer of the system — trace replay, the cache
// substrate, the browser index — identifies documents by a dense int32 ID
// instead of re-hashing the full URL string at each map probe, which is what
// makes slice-backed (rather than map-backed) cache and index structures
// possible.
//
// Two implementations share the ID space semantics:
//
//   - Table: single-goroutine, used by the trace loader and simulator.
//     IDs are assigned densely in first-appearance order, so a trace's ID
//     space is exactly [0, UniqueDocs).
//   - Sync: lock-striped, used by the live proxy, which interns each URL on
//     first sight from any request goroutine.
package intern

import (
	"fmt"
	"hash/maphash"
	"sync"
)

// ID is a dense document identifier. IDs count up from zero per table.
type ID int32

// None is the zero-value-adjacent sentinel for "no document".
const None ID = -1

// Table interns strings single-threaded. The zero value is not usable; call
// NewTable.
type Table struct {
	ids  map[string]ID
	strs []string
}

// NewTable creates an empty table. sizeHint pre-sizes the symbol storage
// (pass 0 when unknown).
func NewTable(sizeHint int) *Table {
	return &Table{
		ids:  make(map[string]ID, sizeHint),
		strs: make([]string, 0, sizeHint),
	}
}

// Intern returns the ID for s, assigning the next dense ID on first sight.
func (t *Table) Intern(s string) ID {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := ID(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// InternBytes is Intern for a byte slice. The map probe compiles without
// allocating (the `map[string(b)]` lookup idiom); a string copy is made only
// when b is a first sight, so a streaming text decoder pays one URL
// allocation per unique document instead of one per trace line.
func (t *Table) InternBytes(b []byte) ID {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id := ID(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the ID for s without interning; ok is false when s has
// never been seen.
func (t *Table) Lookup(s string) (ID, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// String returns the string for id. It panics on an ID the table never
// issued, like a slice bounds failure would.
func (t *Table) String(id ID) string { return t.strs[id] }

// Len reports the number of interned strings; IDs are exactly [0, Len).
func (t *Table) Len() int { return len(t.strs) }

// syncStripes is the stripe count of Sync (power of two).
const syncStripes = 32

// Sync is a concurrency-safe interner. Forward lookups are lock-striped by
// string hash so concurrent request goroutines interning different URLs do
// not contend; ID allocation and the reverse table share one short critical
// section.
type Sync struct {
	seed    maphash.Seed
	stripes [syncStripes]syncStripe

	mu   sync.RWMutex
	strs []string
}

type syncStripe struct {
	mu  sync.RWMutex
	ids map[string]ID
}

// NewSync creates an empty concurrent interner.
func NewSync() *Sync {
	s := &Sync{seed: maphash.MakeSeed()}
	for i := range s.stripes {
		s.stripes[i].ids = make(map[string]ID)
	}
	return s
}

func (s *Sync) stripe(str string) *syncStripe {
	return &s.stripes[maphash.String(s.seed, str)&(syncStripes-1)]
}

// Intern returns the ID for str, assigning a fresh one on first sight.
func (s *Sync) Intern(str string) ID {
	st := s.stripe(str)
	st.mu.RLock()
	id, ok := st.ids[str]
	st.mu.RUnlock()
	if ok {
		return id
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if id, ok = st.ids[str]; ok {
		return id
	}
	s.mu.Lock()
	id = ID(len(s.strs))
	s.strs = append(s.strs, str)
	s.mu.Unlock()
	st.ids[str] = id
	return id
}

// Lookup returns the ID for str without interning.
func (s *Sync) Lookup(str string) (ID, bool) {
	st := s.stripe(str)
	st.mu.RLock()
	id, ok := st.ids[str]
	st.mu.RUnlock()
	return id, ok
}

// String returns the string for id, or "" for an ID never issued.
func (s *Sync) String(id ID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || int(id) >= len(s.strs) {
		return ""
	}
	return s.strs[id]
}

// Len reports the number of interned strings.
func (s *Sync) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.strs)
}

// GoString aids debugging.
func (id ID) GoString() string { return fmt.Sprintf("intern.ID(%d)", int32(id)) }
