package intern

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestTableInternBytes(t *testing.T) {
	tb := NewTable(0)
	a := tb.Intern("http://a.example/1")
	b := tb.InternBytes([]byte("http://b.example/2"))
	if tb.InternBytes([]byte("http://a.example/1")) != a {
		t.Fatalf("InternBytes did not find string-interned entry")
	}
	if tb.Intern("http://b.example/2") != b {
		t.Fatalf("Intern did not find bytes-interned entry")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	// The stored string must be a copy, not aliasing the caller's buffer.
	buf := []byte("http://c.example/3")
	c := tb.InternBytes(buf)
	buf[0] = 'X'
	if got := tb.String(c); got != "http://c.example/3" {
		t.Fatalf("stored string aliases caller buffer: %q", got)
	}
}

func TestU64MapBasic(t *testing.T) {
	var m U64Map
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map reported a key")
	}
	m.Put(42, 7)
	if v, ok := m.Get(42); !ok || v != 7 {
		t.Fatalf("Get(42) = %d,%v want 7,true", v, ok)
	}
	m.Put(42, 9)
	if v, _ := m.Get(42); v != 9 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d want 1", m.Len())
	}

	// Zero key is legal.
	m.Put(0, -5)
	if v, ok := m.Get(0); !ok || v != -5 {
		t.Fatalf("Get(0) = %d,%v want -5,true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d want 2", m.Len())
	}
}

func TestU64MapPutIfAbsent(t *testing.T) {
	var m U64Map
	if v, present := m.PutIfAbsent(10, 1); present || v != 1 {
		t.Fatalf("first PutIfAbsent = %d,%v", v, present)
	}
	if v, present := m.PutIfAbsent(10, 2); !present || v != 1 {
		t.Fatalf("second PutIfAbsent = %d,%v want 1,true", v, present)
	}
	if v, present := m.PutIfAbsent(0, 3); present || v != 3 {
		t.Fatalf("zero-key PutIfAbsent = %d,%v", v, present)
	}
	if v, present := m.PutIfAbsent(0, 4); !present || v != 3 {
		t.Fatalf("zero-key repeat PutIfAbsent = %d,%v want 3,true", v, present)
	}
}

func TestU64MapAgainstBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m U64Map
	ref := map[uint64]int64{}
	for i := 0; i < 200000; i++ {
		k := uint64(rng.Int63n(50000)) // force collisions and overwrites
		v := rng.Int63()
		switch rng.Intn(3) {
		case 0:
			m.Put(k, v)
			ref[k] = v
		case 1:
			got, present := m.PutIfAbsent(k, v)
			want, ok := ref[k]
			if !ok {
				ref[k] = v
				want = v
			}
			if present != ok || got != want {
				t.Fatalf("PutIfAbsent(%d) = %d,%v want %d,%v", k, got, present, want, ok)
			}
		default:
			got, present := m.Get(k)
			want, ok := ref[k]
			if present != ok || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, present, want, ok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d want %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final Get(%d) = %d,%v want %d,true", k, got, ok, want)
		}
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	for k := range ref {
		if _, ok := m.Get(k); ok {
			t.Fatalf("key %d survived Reset", k)
		}
	}
}

func BenchmarkU64MapPutIfAbsent(b *testing.B) {
	var m U64Map
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PutIfAbsent(uint64(i)&0xfffff, int64(i))
	}
}

func ExampleTable_InternBytes() {
	tb := NewTable(0)
	id := tb.InternBytes([]byte("http://x.example/doc"))
	fmt.Println(id == tb.Intern("http://x.example/doc"))
	// Output: true
}
