package origin

import (
	"io"
	"net/http"
	"testing"
	"time"
)

// condGet issues a GET with optional If-None-Match / If-Modified-Since
// headers and returns the response.
func condGet(t *testing.T, url, inm, ims string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	if ims != "" {
		req.Header.Set("If-Modified-Since", ims)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

// TestConditionalGetMatrix covers the 200/304 decision table for the two
// validators across unmodified and modified documents.
func TestConditionalGetMatrix(t *testing.T) {
	o, ts := startOrigin(t)
	url := ts.URL + "/docs/cond"

	// Unconditional GET: 200 with both validators.
	resp, body := condGet(t, url, "", "")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("unconditional = %d (%d bytes), want 200 with body", resp.StatusCode, len(body))
	}
	etag := resp.Header.Get("ETag")
	lastMod := resp.Header.Get("Last-Modified")
	if etag != `"v0"` {
		t.Fatalf("ETag = %q, want %q", etag, `"v0"`)
	}
	if _, err := http.ParseTime(lastMod); err != nil {
		t.Fatalf("Last-Modified %q: %v", lastMod, err)
	}

	cases := []struct {
		name     string
		inm, ims string
		modify   bool // bump the version first
		want     int
	}{
		{name: "etag match", inm: etag, want: http.StatusNotModified},
		{name: "etag star", inm: "*", want: http.StatusNotModified},
		{name: "etag mismatch", inm: `"v99"`, want: http.StatusOK},
		{name: "ims current", ims: lastMod, want: http.StatusNotModified},
		{name: "ims future", ims: time.Now().Add(time.Hour).UTC().Format(http.TimeFormat), want: http.StatusNotModified},
		{name: "ims stale", ims: time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), want: http.StatusOK},
		{name: "ims malformed", ims: "not-a-date", want: http.StatusOK},
		{name: "etag wins over ims", inm: `"v99"`, ims: time.Now().Add(time.Hour).UTC().Format(http.TimeFormat), want: http.StatusOK},
		{name: "etag stale after modify", inm: etag, modify: true, want: http.StatusOK},
		{name: "ims stale after modify", ims: time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), modify: true, want: http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := "/docs/cond"
			u := url
			if tc.modify {
				// Modified cases get their own path so earlier
				// subtests keep seeing version 0.
				path = "/docs/cond-" + tc.name
				u = ts.URL + path
				condGet(t, u, "", "")
				o.Modify(path)
			}
			resp, body := condGet(t, u, tc.inm, tc.ims)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusNotModified {
				if len(body) != 0 {
					t.Fatalf("304 carried %d body bytes", len(body))
				}
				if resp.Header.Get("ETag") == "" || resp.Header.Get("Last-Modified") == "" {
					t.Fatal("304 missing validators")
				}
			} else if len(body) == 0 {
				t.Fatal("200 served no body")
			}
		})
	}
}

// TestConditionalCounters: 304s count as notModified, not as fetches, so
// the load gate's origin_fetches_per_modification only counts full bodies.
func TestConditionalCounters(t *testing.T) {
	o, ts := startOrigin(t)
	url := ts.URL + "/docs/count"
	resp, _ := condGet(t, url, "", "")
	etag := resp.Header.Get("ETag")
	before := o.Fetches()
	for i := 0; i < 3; i++ {
		if r, _ := condGet(t, url, etag, ""); r.StatusCode != http.StatusNotModified {
			t.Fatalf("conditional %d = %d, want 304", i, r.StatusCode)
		}
	}
	if got := o.Fetches(); got != before {
		t.Fatalf("fetches grew %d→%d on 304s", before, got)
	}
	if got := o.NotModified(); got != 3 {
		t.Fatalf("notModified = %d, want 3", got)
	}
	if v := o.Obs().CounterValue("baps_origin_not_modified_total"); v != 3 {
		t.Fatalf("metric = %d, want 3", v)
	}
}

// TestModifyAdvancesLastModified: a modification moves the Last-Modified
// validator forward so date-only clients revalidate correctly.
func TestModifyAdvancesLastModified(t *testing.T) {
	o, _ := startOrigin(t)
	lm0 := o.LastModified("/docs/x")
	time.Sleep(5 * time.Millisecond)
	o.Modify("/docs/x")
	if lm1 := o.LastModified("/docs/x"); !lm1.After(lm0) {
		t.Fatalf("Last-Modified did not advance: %v → %v", lm0, lm1)
	}
}
