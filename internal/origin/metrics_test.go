package origin

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsExposition drives a few requests and checks the origin's
// /metrics endpoint reflects them.
func TestMetricsExposition(t *testing.T) {
	o := New(7)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/doc/a")
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	o.Modify("/doc/a")

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	for _, want := range []string{
		"baps_origin_fetches_total 3",
		"baps_origin_modifies_total 1",
		"baps_origin_modified_docs 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if o.Obs().CounterValue("baps_origin_bytes_total") <= 0 {
		t.Errorf("bytes_total not accounted")
	}
	if got := o.Obs().CounterValue("baps_origin_fetches_total"); got != 3 {
		t.Errorf("fetches_total = %d, want 3", got)
	}
}
