package origin

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

func startOrigin(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	o := New(42)
	ts := httptest.NewServer(o.Handler())
	t.Cleanup(ts.Close)
	return o, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, body
}

func TestDocDeterministic(t *testing.T) {
	_, ts := startOrigin(t)
	_, body1 := get(t, ts.URL+"/docs/a")
	_, body2 := get(t, ts.URL+"/docs/a")
	if !bytes.Equal(body1, body2) {
		t.Fatal("same path served different bodies")
	}
	_, other := get(t, ts.URL+"/docs/b")
	if bytes.Equal(body1, other) {
		t.Fatal("different paths served identical bodies")
	}
	if len(body1) < 1024 || len(body1) > 64*1024 {
		t.Fatalf("default size %d outside 1–64 KB", len(body1))
	}
}

func TestDocSizeOverride(t *testing.T) {
	_, ts := startOrigin(t)
	resp, body := get(t, ts.URL+"/x?size=5000")
	if len(body) != 5000 {
		t.Fatalf("size = %d, want 5000", len(body))
	}
	if cl := resp.Header.Get("Content-Length"); cl != "5000" {
		t.Fatalf("Content-Length = %q", cl)
	}
	resp, _ = get(t, ts.URL+"/x?size=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus size: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/x?size=0")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero size: status %d", resp.StatusCode)
	}
}

func TestModifyChangesBody(t *testing.T) {
	o, ts := startOrigin(t)
	_, before := get(t, ts.URL+"/page")
	resp, err := http.Post(ts.URL+"/admin/modify?path=/page", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("modify: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	respGet, after := get(t, ts.URL+"/page")
	if bytes.Equal(before, after) {
		t.Fatal("modification did not change the body")
	}
	if v := respGet.Header.Get("X-Origin-Version"); v != "1" {
		t.Fatalf("version header = %q, want 1", v)
	}
	if o.Version("/page") != 1 {
		t.Fatalf("Version = %d", o.Version("/page"))
	}
}

func TestModifyValidation(t *testing.T) {
	_, ts := startOrigin(t)
	resp, err := http.Post(ts.URL+"/admin/modify", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing path: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/admin/modify?path=/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET modify: status %d", resp.StatusCode)
	}
}

func TestMethodValidationOnDocs(t *testing.T) {
	_, ts := startOrigin(t)
	resp, err := http.Post(ts.URL+"/doc", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST doc: status %d", resp.StatusCode)
	}
}

func TestFetchCounterAndStats(t *testing.T) {
	o, ts := startOrigin(t)
	get(t, ts.URL+"/a")
	get(t, ts.URL+"/b")
	if o.Fetches() != 2 {
		t.Fatalf("Fetches = %d", o.Fetches())
	}
	_, body := get(t, ts.URL+"/admin/stats")
	if want := `{"fetches":2}`; string(bytes.TrimSpace(body)) != want {
		t.Fatalf("stats = %q, want %q", body, want)
	}
	_, vbody := get(t, ts.URL+"/admin/version?path=/a")
	if _, err := strconv.Atoi(string(bytes.TrimSpace(vbody))); err != nil {
		t.Fatalf("version body %q", vbody)
	}
}

func TestBodyMatchesHTTP(t *testing.T) {
	o, ts := startOrigin(t)
	_, viaHTTP := get(t, ts.URL+"/check")
	direct := o.Body("/check", 0, int64(len(viaHTTP)))
	if !bytes.Equal(viaHTTP, direct) {
		t.Fatal("Body() disagrees with HTTP-served content")
	}
}

func TestInProcessModify(t *testing.T) {
	o := New(7)
	if v := o.Modify("/p"); v != 1 {
		t.Fatalf("Modify = %d", v)
	}
	a := o.Body("/p", 0, 100)
	b := o.Body("/p", 1, 100)
	if bytes.Equal(a, b) {
		t.Fatal("versions generate identical bodies")
	}
}
