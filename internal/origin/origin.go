// Package origin implements a synthetic origin web server for the live
// browsers-aware proxy system: deterministic document bodies generated from
// the request path and a per-document version counter, so tests and demos
// can exercise fetches, re-fetches and origin-side modification without any
// external network. It stands in for "the web server" of the paper's Figure
// 1 (the repository cannot depend on the real 2001 web).
package origin

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"baps/internal/obs"
)

// Server generates documents. Create with New, expose via Handler, and
// typically serve with net/http/httptest in tests or cmd/bapsorigin in
// deployments.
type Server struct {
	seed  uint64
	start time.Time

	mu          sync.RWMutex
	versions    map[string]int64
	modTimes    map[string]time.Time
	fetches     int64
	notModified int64

	obs        *obs.Registry
	bytesOut   *obs.Counter
	modifies   *obs.Counter
	badRequest *obs.Counter
	logger     *slog.Logger
}

// New creates a server whose document contents derive from seed.
func New(seed int64) *Server {
	s := &Server{
		seed:     uint64(seed),
		start:    time.Now(),
		versions: make(map[string]int64),
		modTimes: make(map[string]time.Time),
	}
	s.attachRegistry(obs.NewRegistry())
	return s
}

// SetObs re-homes the server's metrics onto reg (so a shared registry can
// serve them). Call before Handler sees traffic.
func (s *Server) SetObs(reg *obs.Registry) { s.attachRegistry(reg) }

// SetLogger installs a structured logger for request-summary lines.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

func (s *Server) attachRegistry(reg *obs.Registry) {
	s.obs = reg
	reg.CounterFunc("baps_origin_fetches_total",
		"Document requests served by the origin.", func() int64 { return s.Fetches() })
	s.bytesOut = reg.Counter("baps_origin_bytes_total",
		"Document bytes served by the origin.")
	s.modifies = reg.Counter("baps_origin_modifies_total",
		"Origin-side document modifications (version bumps).")
	s.badRequest = reg.Counter("baps_origin_bad_requests_total",
		"Requests rejected with a 4xx status.")
	reg.CounterFunc("baps_origin_not_modified_total",
		"Conditional requests answered 304 Not Modified (no body served).",
		func() int64 { return s.NotModified() })
	reg.GaugeFunc("baps_origin_modified_docs",
		"Documents whose version has been bumped at least once.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.versions))
		})
}

// Obs exposes the origin's metrics registry.
func (s *Server) Obs() *obs.Registry { return s.obs }

// Handler returns the HTTP handler:
//
//	GET  /...                 → the document at that path (any path serves)
//	POST /admin/modify?path=P → bump P's version (origin-side modification)
//	GET  /admin/version?path=P → current version of P
//	GET  /admin/stats         → fetch counter
//	GET  /metrics             → Prometheus text exposition
//
// Document size can be forced with ?size=N (bytes); otherwise it derives
// deterministically from the path (1–64 KB).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/modify", s.handleModify)
	mux.HandleFunc("/admin/version", s.handleVersion)
	mux.HandleFunc("/admin/stats", s.handleStats)
	mux.Handle("/metrics", s.obs.Handler())
	mux.HandleFunc("/", s.handleDoc)
	return mux
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.badRequest.Inc()
		http.Error(w, "origin: GET only", http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Path
	s.mu.Lock()
	version := s.versions[path]
	lastMod := s.lastModLocked(path)
	// Conditional GET (revalidation): the strong validator is the ETag
	// ("v<version>"); If-Modified-Since is honored at HTTP's one-second
	// date resolution for clients that only kept the date.
	etag := fmt.Sprintf("%q", "v"+strconv.FormatInt(version, 10))
	if notModified(r, etag, lastMod) {
		s.notModified++
		s.mu.Unlock()
		h := w.Header()
		h.Set("ETag", etag)
		h.Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
		h.Set("X-Origin-Version", strconv.FormatInt(version, 10))
		w.WriteHeader(http.StatusNotModified)
		if s.logger != nil {
			s.logger.Info("not-modified", "path", path, "version", version)
		}
		return
	}
	s.fetches++
	s.mu.Unlock()

	size := s.sizeFor(path, version)
	if q := r.URL.Query().Get("size"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 || n > 64<<20 {
			s.badRequest.Inc()
			http.Error(w, "origin: bad size", http.StatusBadRequest)
			return
		}
		size = n
	}
	body := s.Body(path, version, size)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("X-Origin-Version", strconv.FormatInt(version, 10))
	w.Header().Set("ETag", etag)
	w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	s.bytesOut.Add(size)
	if s.logger != nil {
		s.logger.Info("serve", "path", path, "version", version, "bytes", size)
	}
}

func (s *Server) handleModify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.badRequest.Inc()
		http.Error(w, "origin: POST only", http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		s.badRequest.Inc()
		http.Error(w, "origin: missing path", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.versions[path]++
	v := s.versions[path]
	s.modTimes[path] = time.Now()
	s.mu.Unlock()
	s.modifies.Inc()
	if s.logger != nil {
		s.logger.Info("modify", "path", path, "version", v)
	}
	fmt.Fprintf(w, "%d\n", v)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	s.mu.RLock()
	v := s.versions[path]
	s.mu.RUnlock()
	fmt.Fprintf(w, "%d\n", v)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	f := s.fetches
	s.mu.RUnlock()
	fmt.Fprintf(w, "{\"fetches\":%d}\n", f)
}

// Fetches reports how many document requests the origin served.
func (s *Server) Fetches() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fetches
}

// Modify bumps a document's version directly (in-process convenience).
func (s *Server) Modify(path string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[path]++
	s.modTimes[path] = time.Now()
	s.modifies.Inc()
	return s.versions[path]
}

// NotModified reports how many conditional requests were answered 304.
func (s *Server) NotModified() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.notModified
}

// LastModified reports a document's modification time (server start for
// never-modified paths).
func (s *Server) LastModified(path string) time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastModLocked(path)
}

// lastModLocked reads a path's modification time with s.mu held.
func (s *Server) lastModLocked(path string) time.Time {
	if t, ok := s.modTimes[path]; ok {
		return t
	}
	return s.start
}

// notModified decides the conditional-GET outcome. The ETag comparison is
// exact (strong validator); the If-Modified-Since comparison truncates to
// seconds, matching the HTTP-date wire resolution.
func notModified(r *http.Request, etag string, lastMod time.Time) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		return inm == etag || inm == "*"
	}
	ims := r.Header.Get("If-Modified-Since")
	if ims == "" {
		return false
	}
	since, err := http.ParseTime(ims)
	if err != nil {
		return false
	}
	return !lastMod.Truncate(time.Second).After(since)
}

// Version reports a document's current version.
func (s *Server) Version(path string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[path]
}

// sizeFor derives the default body size (1–64 KB) from the path.
func (s *Server) sizeFor(path string, version int64) int64 {
	h := s.seed
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * 0x100000001B3
	}
	h ^= uint64(version) * 0x9E3779B97F4A7C15
	h = mix(h)
	return int64(1024 + h%(63*1024))
}

// Body deterministically generates a document's bytes for (path, version,
// size). The live proxy and tests use it to predict exact content.
func (s *Server) Body(path string, version, size int64) []byte {
	state := s.seed ^ mix(uint64(version)+0x1234)
	for i := 0; i < len(path); i++ {
		state = (state ^ uint64(path[i])) * 0x100000001B3
	}
	body := make([]byte, size)
	var word uint64
	for i := range body {
		if i%8 == 0 {
			state += 0x9E3779B97F4A7C15
			word = mix(state)
		}
		body[i] = byte(word >> (8 * (i % 8)))
	}
	return body
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
