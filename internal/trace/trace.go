// Package trace defines the web request trace model consumed by the
// trace-driven simulator, together with parsers for on-disk trace formats,
// trace statistics (the columns of the paper's Table 1), and the client
// subsetting used by the §4.4 client-scaling experiments.
//
// The archived traces the paper used (NLANR uc/bo1 sanitized cache logs, the
// Boston University 1995/1998 client traces, and the CA*netII parent-cache
// logs) are no longer publicly retrievable; internal/synth generates seeded
// synthetic traces with per-paper-trace calibrated profiles instead. This
// package remains format-compatible with Squid access logs so that a real
// log can be replayed when one is available.
package trace

import (
	"fmt"
	"sort"

	"baps/internal/intern"
)

// Request is a single client web request.
type Request struct {
	// Time is the request time in seconds since the start of the trace
	// (fractional seconds allowed). Requests in a Trace are sorted by
	// non-decreasing Time.
	Time float64

	// Client is the dense client identifier, 0 <= Client < NumClients.
	Client int

	// URL identifies the requested document.
	URL string

	// Doc is the interned document ID for URL, dense in first-appearance
	// order, assigned by (*Trace).Intern. The simulator hot path keys every
	// cache and index structure by Doc; URL is retained for parsing,
	// serialization, and diagnostics.
	Doc intern.ID

	// Size is the size in bytes of the document body as delivered for
	// this request. A size different from the previously delivered size
	// for the same URL means the document was modified at the origin;
	// per the paper (§3.2) a cache hit on such a document is counted as
	// a miss.
	Size int64
}

// Trace is an ordered sequence of requests from a set of clients.
type Trace struct {
	// Name labels the trace (e.g. "nlanr-uc").
	Name string

	// NumClients is one more than the largest client id that occurs.
	NumClients int

	// Requests holds the requests in time order.
	Requests []Request

	// Syms maps between URLs and the dense Doc IDs carried by Requests.
	// Nil until Intern has run. Traces derived by SubsetClients share the
	// parent's table so Doc IDs stay comparable across scaling subsets.
	Syms *intern.Table
}

// Intern assigns dense document IDs to every request (idempotent: a trace
// whose Syms is already populated is returned as-is). All loaders and
// generators intern before handing a trace out; call this again only after
// appending raw requests manually.
func (t *Trace) Intern() *intern.Table {
	if t.Syms != nil {
		return t.Syms
	}
	syms := intern.NewTable(len(t.Requests) / 4)
	for i := range t.Requests {
		t.Requests[i].Doc = syms.Intern(t.Requests[i].URL)
	}
	t.Syms = syms
	return syms
}

// NumDocs returns the number of distinct documents, or 0 when the trace has
// not been interned.
func (t *Trace) NumDocs() int {
	if t.Syms == nil {
		return 0
	}
	return t.Syms.Len()
}

// Validate checks structural invariants: client ids within range, positive
// sizes, non-empty URLs, and non-decreasing timestamps.
func (t *Trace) Validate() error {
	prev := -1e300
	for i, r := range t.Requests {
		if r.Client < 0 || r.Client >= t.NumClients {
			return fmt.Errorf("trace %s: request %d: client %d out of range [0,%d)", t.Name, i, r.Client, t.NumClients)
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace %s: request %d: non-positive size %d", t.Name, i, r.Size)
		}
		if r.URL == "" {
			return fmt.Errorf("trace %s: request %d: empty URL", t.Name, i)
		}
		if r.Time < prev {
			return fmt.Errorf("trace %s: request %d: time %g decreases below %g", t.Name, i, r.Time, prev)
		}
		if t.Syms != nil {
			if id, ok := t.Syms.Lookup(r.URL); !ok || id != r.Doc {
				return fmt.Errorf("trace %s: request %d: doc id %d inconsistent with symbol table for %q", t.Name, i, r.Doc, r.URL)
			}
		}
		prev = r.Time
	}
	return nil
}

// Stats summarizes a trace; these are the columns of the paper's Table 1.
type Stats struct {
	Name        string
	NumRequests int
	NumClients  int

	// TotalBytes is the sum of all requested body sizes.
	TotalBytes int64

	// UniqueDocs is the number of distinct URLs.
	UniqueDocs int

	// InfiniteCacheBytes is the total size needed to store every unique
	// requested document (at its last observed size) — the paper's
	// "infinite cache size".
	InfiniteCacheBytes int64

	// ClientInfiniteBytes[i] is client i's own infinite cache size: the
	// bytes needed to store every unique document that client requested.
	ClientInfiniteBytes []int64

	// ClientRequests[i] is the number of requests issued by client i. The
	// sharded replay uses these to derive per-shard warm-up cutoffs without
	// materializing the trace.
	ClientRequests []int64

	// MaxHitRatio is the hit ratio of an unbounded shared cache: a
	// request hits if the URL was requested before (by any client) and
	// its size is unchanged since the previous delivery.
	MaxHitRatio float64

	// MaxByteHitRatio is the corresponding byte hit ratio.
	MaxByteHitRatio float64

	// SharedRequests counts requests whose URL had previously been
	// requested by a *different* client with an unchanged size — an upper
	// bound on the remote-browser sharing opportunity the browsers-aware
	// proxy exploits.
	SharedRequests int
}

// AvgClientInfiniteBytes returns the mean per-client infinite cache size,
// which the paper uses to derive the "average" browser cache sizing.
func (s *Stats) AvgClientInfiniteBytes() int64 {
	if len(s.ClientInfiniteBytes) == 0 {
		return 0
	}
	var sum int64
	for _, b := range s.ClientInfiniteBytes {
		sum += b
	}
	return sum / int64(len(s.ClientInfiniteBytes))
}

// Compute derives Stats from a trace in a single pass. The trace is interned
// as a side effect (if it was not already) so the document state tables can
// be flat slices indexed by doc ID rather than string-keyed maps.
func Compute(t *Trace) Stats {
	syms := t.Intern()
	s := Stats{
		Name:                t.Name,
		NumRequests:         len(t.Requests),
		NumClients:          t.NumClients,
		ClientInfiniteBytes: make([]int64, t.NumClients),
		ClientRequests:      make([]int64, t.NumClients),
	}
	type docState struct {
		size       int64
		lastClient int32
		seen       bool
	}
	docs := make([]docState, syms.Len())
	clientSeen := make(map[uint64]int64, len(t.Requests)/2+1) // client⊕doc -> last size seen by that client
	var hitBytes int64
	hits := 0
	for i := range t.Requests {
		r := &t.Requests[i]
		s.TotalBytes += r.Size
		s.ClientRequests[r.Client]++
		d := &docs[r.Doc]
		if d.seen && d.size == r.Size {
			hits++
			hitBytes += r.Size
			if d.lastClient != int32(r.Client) {
				s.SharedRequests++
			}
		}
		if !d.seen {
			d.seen = true
			s.InfiniteCacheBytes += r.Size
		} else {
			s.InfiniteCacheBytes += r.Size - d.size // track last observed size
		}
		d.size = r.Size
		d.lastClient = int32(r.Client)
		ck := uint64(r.Client)<<32 | uint64(uint32(r.Doc))
		if prev, ok := clientSeen[ck]; !ok {
			clientSeen[ck] = r.Size
			s.ClientInfiniteBytes[r.Client] += r.Size
		} else if prev != r.Size {
			s.ClientInfiniteBytes[r.Client] += r.Size - prev
			clientSeen[ck] = r.Size
		}
	}
	s.UniqueDocs = syms.Len()
	if s.NumRequests > 0 {
		s.MaxHitRatio = float64(hits) / float64(s.NumRequests)
	}
	if s.TotalBytes > 0 {
		s.MaxByteHitRatio = float64(hitBytes) / float64(s.TotalBytes)
	}
	return s
}

// SubsetClients returns a new trace containing only the requests of the
// first fraction of clients in a deterministic shuffled order derived from
// seed; client ids are renumbered densely. This implements the paper's
// "relative number of clients" sweep (25 %, 50 %, 75 %, 100 %): the same seed
// yields nested subsets, so the 25 % client set is contained in the 50 % set
// and so on, matching how the paper grows the client population.
func SubsetClients(t *Trace, fraction float64, seed int64) *Trace {
	t.Intern()
	if fraction >= 1 {
		return t
	}
	if fraction <= 0 {
		return &Trace{Name: t.Name, NumClients: 0}
	}
	order := shuffledClients(t.NumClients, seed)
	n := int(float64(t.NumClients)*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	keep := make(map[int]int, n) // old id -> new id
	chosen := append([]int(nil), order[:n]...)
	sort.Ints(chosen)
	for newID, oldID := range chosen {
		keep[oldID] = newID
	}
	out := &Trace{
		Name:       fmt.Sprintf("%s[%d%%]", t.Name, int(fraction*100+0.5)),
		NumClients: n,
		// Share the parent's symbol table: Doc IDs in the subset remain
		// valid (the ID space is a superset of the subset's documents),
		// and sweep workers avoid re-interning per scaling point.
		Syms: t.Syms,
	}
	for _, r := range t.Requests {
		if newID, ok := keep[r.Client]; ok {
			r.Client = newID
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Concat joins traces end-to-end in time, as the paper does with the two
// CA*netII daily logs ("the client IDs are consistent from day to day, so we
// concatenate two days logs together"). Client ids are shared across the
// inputs — client 3 in the second trace is client 3 in the first — and each
// subsequent trace's timestamps are shifted to start gapSec after the
// previous trace ends.
func Concat(gapSec float64, traces ...*Trace) *Trace {
	out := &Trace{}
	if len(traces) == 0 {
		return out
	}
	out.Name = traces[0].Name + "+concat"
	offset := 0.0
	for ti, t := range traces {
		if t.NumClients > out.NumClients {
			out.NumClients = t.NumClients
		}
		last := 0.0
		for _, r := range t.Requests {
			r.Time += offset
			out.Requests = append(out.Requests, r)
			last = r.Time
		}
		if ti < len(traces)-1 {
			offset = last + gapSec
		}
	}
	// Doc IDs copied from the inputs belong to per-input tables; re-intern
	// so the concatenated trace has one consistent dense ID space.
	out.Intern()
	return out
}

// shuffledClients returns a deterministic permutation of [0,n) using a
// simple multiplicative hash shuffle (independent of math/rand version
// behavior, so subsets are stable across Go releases).
func shuffledClients(n int, seed int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() uint64 {
		state ^= state >> 30
		state *= 0xBF58476D1CE4E5B9
		state ^= state >> 27
		state *= 0x94D049BB133111EB
		state ^= state >> 31
		return state
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}
