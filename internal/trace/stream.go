package trace

import (
	"fmt"
	"io"

	"baps/internal/intern"
)

// Stream yields a trace's requests in time order, in bounded batches, with
// document IDs already interned — the out-of-core counterpart of walking
// Trace.Requests. Implementations: SliceStream (an in-memory Trace),
// TextStream (the native text format, decoded incrementally), and BTRReader
// (the compact binary format).
//
// A Stream is single-use and not safe for concurrent use; replaying twice
// (e.g. a stats pass followed by the simulation pass) means opening the
// source twice.
type Stream interface {
	// Next fills buf with the next len(buf) requests (fewer at the tail)
	// and returns how many were produced. It returns 0, io.EOF at end of
	// stream — never a short batch together with io.EOF. Requests carry
	// Doc IDs; URL may be empty (the binary format streams records without
	// materializing URLs).
	Next(buf []Request) (int, error)

	// Name labels the trace.
	Name() string

	// NumClients reports the client-ID space [0, NumClients). Sources
	// that declare it up front (BTR header, SliceStream) report the final
	// value immediately; incremental text decoding reports the space seen
	// so far, final only after Next has returned io.EOF.
	NumClients() int

	// NumDocs reports the document-ID space [0, NumDocs), with the same
	// up-front/incremental split as NumClients.
	NumDocs() int

	// Close releases the underlying source. Close is idempotent.
	Close() error
}

// SliceStream adapts an in-memory Trace to the Stream interface.
type SliceStream struct {
	t   *Trace
	pos int
}

// NewSliceStream returns a Stream over t's requests. The trace is interned
// as a side effect if it was not already.
func NewSliceStream(t *Trace) *SliceStream {
	t.Intern()
	return &SliceStream{t: t}
}

// Next copies the next batch of requests out of the backing slice.
func (s *SliceStream) Next(buf []Request) (int, error) {
	n := copy(buf, s.t.Requests[s.pos:])
	if n == 0 {
		return 0, io.EOF
	}
	s.pos += n
	return n, nil
}

// Name labels the trace.
func (s *SliceStream) Name() string { return s.t.Name }

// NumClients reports the backing trace's client count.
func (s *SliceStream) NumClients() int { return s.t.NumClients }

// NumDocs reports the backing trace's document count.
func (s *SliceStream) NumDocs() int { return s.t.NumDocs() }

// Close is a no-op for the in-memory adapter.
func (s *SliceStream) Close() error { return nil }

// StreamBatchSize is the default request batch size for streaming replay:
// large enough to amortize per-batch overhead, small enough (a few hundred
// KiB) to stay cache- and memory-friendly.
const StreamBatchSize = 8192

// StreamStats computes Stats in a single pass over a stream without
// materializing the trace. It is the out-of-core counterpart of Compute and
// produces bit-identical results on the same request sequence (every
// accumulation is an integer sum in stream order; the final ratios divide
// identical integers).
//
// Peak memory is O(UniqueDocs + NumClients + distinct (client, doc) pairs):
// the per-document state is a flat 16-byte slice and the first-sight pair
// map is a compact open-addressing table (~24 B/pair), not a Go map.
func StreamStats(s Stream) (Stats, error) {
	st := Stats{Name: s.Name()}
	type docState struct {
		size       int64
		lastClient int32
		seen       bool
	}
	docs := make([]docState, 0, maxInt(s.NumDocs(), 0))
	var clientSeen intern.U64Map // client⊕doc -> last size seen by that client
	var hitBytes int64
	hits := 0
	buf := make([]Request, StreamBatchSize)
	for {
		n, err := s.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Stats{}, err
		}
		for i := 0; i < n; i++ {
			r := &buf[i]
			if r.Client < 0 || r.Doc < 0 {
				return Stats{}, fmt.Errorf("trace %s: request %d: negative client %d or doc %d",
					st.Name, st.NumRequests, r.Client, int32(r.Doc))
			}
			st.NumRequests++
			st.TotalBytes += r.Size
			for r.Client >= len(st.ClientRequests) {
				st.ClientRequests = append(st.ClientRequests, 0)
				st.ClientInfiniteBytes = append(st.ClientInfiniteBytes, 0)
			}
			st.ClientRequests[r.Client]++
			for int(r.Doc) >= len(docs) {
				docs = append(docs, docState{})
			}
			d := &docs[r.Doc]
			if d.seen && d.size == r.Size {
				hits++
				hitBytes += r.Size
				if d.lastClient != int32(r.Client) {
					st.SharedRequests++
				}
			}
			if !d.seen {
				d.seen = true
				st.InfiniteCacheBytes += r.Size
			} else {
				st.InfiniteCacheBytes += r.Size - d.size
			}
			d.size = r.Size
			d.lastClient = int32(r.Client)
			ck := uint64(r.Client)<<32 | uint64(uint32(r.Doc))
			if prev, present := clientSeen.PutIfAbsent(ck, r.Size); !present {
				st.ClientInfiniteBytes[r.Client] += r.Size
			} else if prev != r.Size {
				st.ClientInfiniteBytes[r.Client] += r.Size - prev
				clientSeen.Put(ck, r.Size)
			}
		}
	}
	// Re-read the name after the drain: a text stream learns it from the
	// header comment during the first Next.
	st.Name = s.Name()
	st.NumClients = len(st.ClientRequests)
	if nc := s.NumClients(); nc > st.NumClients {
		// The source declares more clients than issued requests (legal:
		// silent clients still get cache capacity). Extend the per-client
		// vectors so their length equals the client-ID space, as Compute's
		// make([]int64, NumClients) does.
		for len(st.ClientRequests) < nc {
			st.ClientRequests = append(st.ClientRequests, 0)
			st.ClientInfiniteBytes = append(st.ClientInfiniteBytes, 0)
		}
		st.NumClients = nc
	}
	st.UniqueDocs = len(docs)
	if nd := s.NumDocs(); nd > st.UniqueDocs {
		st.UniqueDocs = nd
	}
	if st.NumRequests > 0 {
		st.MaxHitRatio = float64(hits) / float64(st.NumRequests)
	}
	if st.TotalBytes > 0 {
		st.MaxByteHitRatio = float64(hitBytes) / float64(st.TotalBytes)
	}
	return st, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
