package trace

import (
	"strings"
	"testing"
)

const clfSample = `hostA - - [10/Oct/1998:13:55:36 -0700] "GET /page.html HTTP/1.0" 200 2326
hostB - alice [10/Oct/1998:13:55:30 -0700] "GET /img/logo.gif HTTP/1.0" 200 512
hostA - - [10/Oct/1998:13:55:40 -0700] "POST /form HTTP/1.0" 200 100
hostC - - [10/Oct/1998:13:55:42 -0700] "GET /missing HTTP/1.0" 404 170
hostA - - [10/Oct/1998:13:55:45 -0700] "GET /page.html HTTP/1.0" 304 2326
hostB - - [10/Oct/1998:13:55:50 -0700] "GET /nosize HTTP/1.0" 200 -
`

func TestParseCLF(t *testing.T) {
	tr, err := ParseCLF(strings.NewReader(clfSample), "clf")
	if err != nil {
		t.Fatalf("ParseCLF: %v", err)
	}
	// Kept: hostA GET 200, hostB GET 200, hostA GET 304-with-size.
	if len(tr.Requests) != 3 {
		t.Fatalf("kept %d requests, want 3: %+v", len(tr.Requests), tr.Requests)
	}
	// hostC only issued a 404 → no client id; hostA and hostB remain.
	if tr.NumClients != 2 {
		t.Fatalf("NumClients = %d, want 2", tr.NumClients)
	}
	// Sorted by time and rebased: hostB's 13:55:30 first at t=0.
	if tr.Requests[0].Time != 0 || tr.Requests[0].URL != "/img/logo.gif" {
		t.Fatalf("first request: %+v", tr.Requests[0])
	}
	if tr.Requests[1].Time != 6 || tr.Requests[2].Time != 15 {
		t.Fatalf("rebasing wrong: %+v", tr.Requests)
	}
	if tr.Requests[1].Size != 2326 {
		t.Fatalf("size wrong: %+v", tr.Requests[1])
	}
}

func TestParseCLFErrors(t *testing.T) {
	bad := map[string]string{
		"no host":       "singlefield\n",
		"no timestamp":  "h - - GET /x 200 10\n",
		"bad timestamp": `h - - [not/a/date] "GET /x HTTP/1.0" 200 10` + "\n",
		"no request":    "h - - [10/Oct/1998:13:55:36 -0700] 200 10\n",
		"unterminated":  `h - - [10/Oct/1998:13:55:36 -0700] "GET /x 200 10` + "\n",
		"bad status":    `h - - [10/Oct/1998:13:55:36 -0700] "GET /x HTTP/1.0" xx 10` + "\n",
		"bad size":      `h - - [10/Oct/1998:13:55:36 -0700] "GET /x HTTP/1.0" 200 1x0` + "\n",
		"short request": `h - - [10/Oct/1998:13:55:36 -0700] "GET" 200 10` + "\n",
		"missing tail":  `h - - [10/Oct/1998:13:55:36 -0700] "GET /x HTTP/1.0" 200` + "\n",
	}
	for name, in := range bad {
		if _, err := ParseCLF(strings.NewReader(in), "t"); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseCLFSkipsCommentsAndZeroSize(t *testing.T) {
	in := "# comment\n\nh - - [10/Oct/1998:13:55:36 -0700] \"GET /x HTTP/1.0\" 200 0\n"
	tr, err := ParseCLF(strings.NewReader(in), "t")
	if err != nil {
		t.Fatalf("ParseCLF: %v", err)
	}
	if len(tr.Requests) != 0 {
		t.Fatalf("zero-size line kept: %+v", tr.Requests)
	}
}
