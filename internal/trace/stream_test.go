package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func statsEqual(t *testing.T, a, b Stats) {
	t.Helper()
	if a.Name != b.Name || a.NumRequests != b.NumRequests || a.NumClients != b.NumClients {
		t.Fatalf("shape mismatch: %+v vs %+v", a, b)
	}
	if a.TotalBytes != b.TotalBytes || a.UniqueDocs != b.UniqueDocs ||
		a.InfiniteCacheBytes != b.InfiniteCacheBytes || a.SharedRequests != b.SharedRequests {
		t.Fatalf("aggregate mismatch: %+v vs %+v", a, b)
	}
	if a.MaxHitRatio != b.MaxHitRatio || a.MaxByteHitRatio != b.MaxByteHitRatio {
		t.Fatalf("ratio mismatch: %v/%v vs %v/%v", a.MaxHitRatio, a.MaxByteHitRatio, b.MaxHitRatio, b.MaxByteHitRatio)
	}
	if len(a.ClientInfiniteBytes) != len(b.ClientInfiniteBytes) {
		t.Fatalf("ClientInfiniteBytes len %d vs %d", len(a.ClientInfiniteBytes), len(b.ClientInfiniteBytes))
	}
	for i := range a.ClientInfiniteBytes {
		if a.ClientInfiniteBytes[i] != b.ClientInfiniteBytes[i] {
			t.Fatalf("ClientInfiniteBytes[%d] = %d vs %d", i, a.ClientInfiniteBytes[i], b.ClientInfiniteBytes[i])
		}
	}
	if len(a.ClientRequests) != len(b.ClientRequests) {
		t.Fatalf("ClientRequests len %d vs %d", len(a.ClientRequests), len(b.ClientRequests))
	}
	for i := range a.ClientRequests {
		if a.ClientRequests[i] != b.ClientRequests[i] {
			t.Fatalf("ClientRequests[%d] = %d vs %d", i, a.ClientRequests[i], b.ClientRequests[i])
		}
	}
}

// statsTrace builds a trace exercising every Stats code path: repeats,
// cross-client sharing, size changes (modifications), silent clients.
func statsTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	nc := rng.Intn(12) + 2
	tr := &Trace{Name: "stats", NumClients: nc + 1} // one silent trailing client
	tm := 0.0
	nd := rng.Intn(40) + 5
	for i := 0; i < n; i++ {
		tm += rng.Float64()
		d := rng.Intn(nd)
		size := int64(100 + d*7)
		if rng.Intn(10) == 0 {
			size += int64(rng.Intn(50) + 1) // modification
		}
		tr.Requests = append(tr.Requests, Request{
			Time:   tm,
			Client: rng.Intn(nc),
			URL:    fmt.Sprintf("http://h/%d", d),
			Size:   size,
		})
	}
	tr.Intern()
	return tr
}

// StreamStats over a SliceStream must equal Compute bit-for-bit.
func TestStreamStatsMatchesCompute(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := statsTrace(seed, 5000)
		want := Compute(tr)
		got, err := StreamStats(NewSliceStream(tr))
		if err != nil {
			t.Fatalf("seed %d: StreamStats: %v", seed, err)
		}
		statsEqual(t, got, want)
	}
}

// The same must hold when the records stream through the binary format
// (which drops URLs — Stats never needed them).
func TestStreamStatsOverBTR(t *testing.T) {
	tr := statsTrace(42, 5000)
	want := Compute(tr)
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBTR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamStats(r)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, got, want)
}

// ...and through the streaming text decoder.
func TestStreamStatsOverText(t *testing.T) {
	tr := statsTrace(17, 3000)
	// The text format quantizes times; re-read for a fair comparison.
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	reread, err := Read(strings.NewReader(text), "stats")
	if err != nil {
		t.Fatal(err)
	}
	want := Compute(reread)
	got, err := StreamStats(NewTextStream(strings.NewReader(text), "stats"))
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, got, want)
}

func TestSliceStreamBatches(t *testing.T) {
	tr := statsTrace(3, 100)
	s := NewSliceStream(tr)
	var got []Request
	buf := make([]Request, 7)
	for {
		n, err := s.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(tr.Requests) {
		t.Fatalf("streamed %d, want %d", len(got), len(tr.Requests))
	}
	// Further calls keep returning EOF.
	if n, err := s.Next(buf); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF Next = %d,%v", n, err)
	}
}

func TestStreamStatsRejectsNegativeIDs(t *testing.T) {
	tr := &Trace{Name: "neg", NumClients: 1, Requests: []Request{
		{Time: 0, Client: -1, URL: "u", Doc: 0, Size: 1},
	}}
	tr.Syms = nil
	// Bypass Intern's validation by handing the stream directly.
	s := &SliceStream{t: &Trace{Name: "neg", NumClients: 1, Requests: tr.Requests}}
	s.t.Syms = nil
	if _, err := StreamStats(s); err == nil {
		t.Fatal("StreamStats accepted a negative client ID")
	}
}

func TestTextStreamLineTooLong(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("1.0 0 10 http://ok/a\n")
	sb.WriteString("2.0 0 10 http://")
	sb.WriteString(strings.Repeat("x", maxLineBytes+10))
	sb.WriteString("\n")
	_, err := Read(strings.NewReader(sb.String()), "t")
	if err == nil {
		t.Fatal("Read accepted an oversized line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
	if !strings.Contains(err.Error(), ErrLineTooLong.Error()) {
		t.Fatalf("error is not ErrLineTooLong: %v", err)
	}
}

func TestTextStreamLineTooLongErrorsIs(t *testing.T) {
	in := "0.5 0 10 http://" + strings.Repeat("y", maxLineBytes) + "\n"
	_, err := Read(strings.NewReader(in), "t")
	if err == nil {
		t.Fatal("accepted oversized line")
	}
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("errors.Is(err, ErrLineTooLong) = false for %v", err)
	}
}

// The fast byte-level float parser must agree bit-for-bit with strconv.
func TestFastFloatMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "0.5", "1.25", "123.456", "0.001", "874.5",
		"1.", ".5", "+3.75", "99999999999999.999", "-0", "0.000",
		"184467440737095516.15", // 20 digits -> fallback
		"1e3", "2.5E-2", "inf",  // fallback paths
	}
	for _, c := range cases {
		want, werr := strconv.ParseFloat(c, 64)
		got, gerr := parseFloatBytes([]byte(c))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: err mismatch %v vs %v", c, gerr, werr)
		}
		if werr == nil && math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%q: %v (%x) != strconv %v (%x)", c, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		s := fmt.Sprintf("%d.%03d", rng.Intn(1000000), rng.Intn(1000))
		want, _ := strconv.ParseFloat(s, 64)
		got, err := parseFloatBytes([]byte(s))
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%q: %v != %v", s, got, want)
		}
	}
}

// FuzzRead: the text parser must never panic and must only produce valid
// traces, whatever the input bytes.
func FuzzRead(f *testing.F) {
	f.Add("# baps trace t clients=1 requests=1\n1.0 0 100 http://x/a\n")
	f.Add("1.0 0 100 http://x/a\n2.0 1 50 http://x/b")
	f.Add("")
	f.Add("# comment only\n\n")
	f.Add("nan 0 1 u\n")
	f.Add("1.0 0 1 u extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Read accepted invalid trace: %v", verr)
		}
	})
}

// BenchmarkTraceRead measures the text decode hot path (satellite: the
// strings.Fields replacement). One synthetic text trace is decoded per
// iteration pair; bytes/op counts the input size.
func BenchmarkTraceRead(b *testing.B) {
	tr := statsTrace(1, 50000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReadBTR is the binary-format counterpart (streaming,
// no URL materialization).
func BenchmarkTraceReadBTR(b *testing.B) {
	tr := statsTrace(1, 50000)
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	batch := make([]Request, StreamBatchSize)
	for i := 0; i < b.N; i++ {
		r, err := OpenBTR(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			n, err := r.Next(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			_ = n
		}
	}
}
