package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseCLF parses NCSA Common Log Format (the format of the BU trace era):
//
//	host ident authuser [dd/Mon/yyyy:hh:mm:ss zone] "METHOD url PROTO" status size
//
// Hosts map to dense client ids in first-seen order. Only successful GET
// lines with a positive size are kept (status 2xx or 304; 304s replay the
// document's previous size, so they are dropped when no size is present,
// indicated by "-"). Timestamps rebase to zero and requests sort by time.
func ParseCLF(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	clients := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, ok, err := parseCLFLine(line, clients)
		if err != nil {
			return nil, fmt.Errorf("clf: line %d: %w", lineNo, err)
		}
		if ok {
			t.Requests = append(t.Requests, req)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.NumClients = len(clients)
	sort.SliceStable(t.Requests, func(i, j int) bool { return t.Requests[i].Time < t.Requests[j].Time })
	if len(t.Requests) > 0 {
		base := t.Requests[0].Time
		for i := range t.Requests {
			t.Requests[i].Time -= base
		}
	}
	t.Intern()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseCLFLine parses one CLF record; ok is false for well-formed lines the
// replay filters out (non-GET, failures, missing sizes).
func parseCLFLine(line string, clients map[string]int) (Request, bool, error) {
	// host ident user [
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return Request{}, false, fmt.Errorf("no host field")
	}
	host := line[:sp]
	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return Request{}, false, fmt.Errorf("no bracketed timestamp")
	}
	ts, err := time.Parse("02/Jan/2006:15:04:05 -0700", line[lb+1:rb])
	if err != nil {
		return Request{}, false, fmt.Errorf("bad timestamp %q: %v", line[lb+1:rb], err)
	}
	lq := strings.IndexByte(line[rb:], '"')
	if lq < 0 {
		return Request{}, false, fmt.Errorf("no request field")
	}
	lq += rb
	rq := strings.IndexByte(line[lq+1:], '"')
	if rq < 0 {
		return Request{}, false, fmt.Errorf("unterminated request field")
	}
	reqLine := line[lq+1 : lq+1+rq]
	tail := strings.Fields(strings.TrimSpace(line[lq+2+rq:]))
	if len(tail) < 2 {
		return Request{}, false, fmt.Errorf("missing status/size")
	}
	status, err := strconv.Atoi(tail[0])
	if err != nil {
		return Request{}, false, fmt.Errorf("bad status %q", tail[0])
	}
	reqParts := strings.Fields(reqLine)
	if len(reqParts) < 2 {
		return Request{}, false, fmt.Errorf("bad request line %q", reqLine)
	}
	method, url := reqParts[0], reqParts[1]
	// Filters (well-formed, just not replayable).
	if method != "GET" {
		return Request{}, false, nil
	}
	if !(status >= 200 && status < 300 || status == 304) {
		return Request{}, false, nil
	}
	if tail[1] == "-" {
		return Request{}, false, nil
	}
	size, err := strconv.ParseInt(tail[1], 10, 64)
	if err != nil {
		return Request{}, false, fmt.Errorf("bad size %q", tail[1])
	}
	if size <= 0 {
		return Request{}, false, nil
	}
	id, ok := clients[host]
	if !ok {
		id = len(clients)
		clients[host] = id
	}
	return Request{
		Time:   float64(ts.UnixNano()) / 1e9,
		Client: id,
		URL:    url,
		Size:   size,
	}, true, nil
}
