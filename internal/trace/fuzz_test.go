package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

// The parsers face hostile input (logs are frequently truncated or
// corrupted); none of them may panic, whatever the bytes.

func TestQuickParsersNeverPanic(t *testing.T) {
	parsers := map[string]func(string) error{
		"native": func(s string) error { _, err := Read(strings.NewReader(s), "f"); return err },
		"squid":  func(s string) error { _, err := ParseSquid(strings.NewReader(s), "f"); return err },
		"clf":    func(s string) error { _, err := ParseCLF(strings.NewReader(s), "f"); return err },
	}
	for name, parse := range parsers {
		name, parse := name, parse
		t.Run(name, func(t *testing.T) {
			f := func(input string) bool {
				// Any outcome but a panic is acceptable.
				_ = parse(input)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParsersOnMutatedValidLines corrupts valid lines field-by-field: the
// parsers must reject cleanly (error or filtered), never panic or accept
// garbage into an invalid Trace.
func TestParsersOnMutatedValidLines(t *testing.T) {
	valid := map[string]string{
		"native": "1.0 0 100 http://x/a",
		"squid":  `874.5 120 client-a TCP_MISS/200 4000 GET http://w/x - DIRECT/w text/html`,
		"clf":    `hostA - - [10/Oct/1998:13:55:36 -0700] "GET /page.html HTTP/1.0" 200 2326`,
	}
	parse := map[string]func(string) (*Trace, error){
		"native": func(s string) (*Trace, error) { return Read(strings.NewReader(s), "f") },
		"squid":  func(s string) (*Trace, error) { return ParseSquid(strings.NewReader(s), "f") },
		"clf":    func(s string) (*Trace, error) { return ParseCLF(strings.NewReader(s), "f") },
	}
	for name, line := range valid {
		p := parse[name]
		// Sanity: the valid line parses.
		if _, err := p(line + "\n"); err != nil {
			t.Fatalf("%s: valid line rejected: %v", name, err)
		}
		for cut := 0; cut <= len(line); cut++ {
			tr, err := p(line[:cut] + "\n")
			if err != nil {
				continue
			}
			if verr := tr.Validate(); verr != nil {
				t.Errorf("%s: truncation at %d produced invalid trace: %v", name, cut, verr)
			}
		}
		// Byte flips.
		for i := 0; i < len(line); i += 3 {
			mut := []byte(line)
			mut[i] ^= 0x20
			tr, err := p(string(mut) + "\n")
			if err != nil {
				continue
			}
			if verr := tr.Validate(); verr != nil {
				t.Errorf("%s: flip at %d produced invalid trace: %v", name, i, verr)
			}
		}
	}
}
