package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"baps/internal/intern"
)

// The compact binary trace format (".btr"). Everything is little-endian.
//
//	header:
//	  [8]byte  magic "BAPSBTR1"
//	  u32      flags (reserved, zero)
//	  i64      numClients
//	  i64      numDocs
//	  i64      numRequests
//	  i64      symtabOff   (byte offset of the symbol table; 0 = absent)
//	  u32      nameLen, then nameLen bytes of trace name
//	records (numRequests × 24 bytes, immediately after the header):
//	  f64 time | u32 client | u32 doc | i64 size
//	symbol table (at symtabOff, directly after the records when present):
//	  numDocs × { u32 urlLen, urlLen bytes } in document-ID order
//
// Records carry interned document IDs, not URLs, so a replay streams
// fixed-width records without ever materializing strings; the URL symbol
// table sits at the tail where only consumers that need URLs (ReadBTR,
// format conversion) reach it. The layout is sequential-read friendly —
// header, then records, then symbols — and the tail position lets a
// streaming writer with unknown counts back-patch the header through one
// Seek instead of buffering the record stream.

// btrMagic identifies version 1 of the binary format.
var btrMagic = [8]byte{'B', 'A', 'P', 'S', 'B', 'T', 'R', '1'}

// btrRecordSize is the fixed on-disk size of one request record.
const btrRecordSize = 8 + 4 + 4 + 8

// btrFixedHeaderSize is the header size up to (not including) the name.
const btrFixedHeaderSize = 8 + 4 + 8 + 8 + 8 + 8 + 4

// btrMaxNameLen caps the trace-name field against corrupt headers.
const btrMaxNameLen = 1 << 16

// btrMaxURLLen caps one symbol-table entry against corrupt tables.
const btrMaxURLLen = maxLineBytes

// ErrBadMagic reports a stream that is not a version-1 binary trace.
var ErrBadMagic = errors.New("trace: not a baps binary trace (bad magic)")

type btrHeader struct {
	numClients  int64
	numDocs     int64
	numRequests int64
	symtabOff   int64
	name        string
}

func (h *btrHeader) size() int64 { return int64(btrFixedHeaderSize + len(h.name)) }

func (h *btrHeader) marshal() []byte {
	buf := make([]byte, h.size())
	copy(buf, btrMagic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], 0) // flags
	le.PutUint64(buf[12:], uint64(h.numClients))
	le.PutUint64(buf[20:], uint64(h.numDocs))
	le.PutUint64(buf[28:], uint64(h.numRequests))
	le.PutUint64(buf[36:], uint64(h.symtabOff))
	le.PutUint32(buf[44:], uint32(len(h.name)))
	copy(buf[btrFixedHeaderSize:], h.name)
	return buf
}

func readBTRHeader(r io.Reader) (btrHeader, error) {
	var fixed [btrFixedHeaderSize]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return btrHeader{}, fmt.Errorf("trace: truncated btr header: %w", err)
	}
	if [8]byte(fixed[:8]) != btrMagic {
		return btrHeader{}, ErrBadMagic
	}
	le := binary.LittleEndian
	h := btrHeader{
		numClients:  int64(le.Uint64(fixed[12:])),
		numDocs:     int64(le.Uint64(fixed[20:])),
		numRequests: int64(le.Uint64(fixed[28:])),
		symtabOff:   int64(le.Uint64(fixed[36:])),
	}
	nameLen := le.Uint32(fixed[44:])
	if nameLen > btrMaxNameLen {
		return btrHeader{}, fmt.Errorf("trace: btr header name length %d exceeds cap %d", nameLen, btrMaxNameLen)
	}
	if h.numClients < 0 || h.numDocs < 0 || h.numRequests < 0 || h.symtabOff < 0 {
		return btrHeader{}, fmt.Errorf("trace: btr header has negative counts")
	}
	if h.numClients > math.MaxUint32+1 || h.numDocs > math.MaxInt32 {
		return btrHeader{}, fmt.Errorf("trace: btr header counts exceed ID space (clients=%d docs=%d)", h.numClients, h.numDocs)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return btrHeader{}, fmt.Errorf("trace: truncated btr header name: %w", err)
	}
	h.name = string(name)
	return h, nil
}

// BTRWriter streams requests into the binary format with counts unknown up
// front: a placeholder header goes out first and Finish back-patches it, so
// the writer needs an io.WriteSeeker (an *os.File) but never holds more
// than one buffered write of state. Use WriteBTR for an in-memory Trace.
type BTRWriter struct {
	ws       io.WriteSeeker
	bw       *bufio.Writer
	hdr      btrHeader
	prevTime float64
	maxDoc   intern.ID
	closed   bool
}

// NewBTRWriter writes the placeholder header and returns a streaming writer.
func NewBTRWriter(ws io.WriteSeeker, name string) (*BTRWriter, error) {
	w := &BTRWriter{ws: ws, bw: bufio.NewWriterSize(ws, 256*1024), hdr: btrHeader{name: name}, maxDoc: intern.None}
	if _, err := w.bw.Write(w.hdr.marshal()); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteRequest appends one record. Requests must arrive in non-decreasing
// time order with interned Doc IDs and positive sizes; URL is ignored (the
// symbol table is supplied to Finish).
func (w *BTRWriter) WriteRequest(r Request) error {
	if r.Doc < 0 {
		return fmt.Errorf("trace: btr write: request has no interned doc ID (URL %q)", r.URL)
	}
	if r.Client < 0 || int64(r.Client) > math.MaxUint32 {
		return fmt.Errorf("trace: btr write: client %d out of range", r.Client)
	}
	if r.Size <= 0 {
		return fmt.Errorf("trace: btr write: non-positive size %d", r.Size)
	}
	if w.hdr.numRequests > 0 && r.Time < w.prevTime {
		return fmt.Errorf("trace: btr write: time %g decreases below %g", r.Time, w.prevTime)
	}
	var rec [btrRecordSize]byte
	le := binary.LittleEndian
	le.PutUint64(rec[0:], math.Float64bits(r.Time))
	le.PutUint32(rec[8:], uint32(r.Client))
	le.PutUint32(rec[12:], uint32(r.Doc))
	le.PutUint64(rec[16:], uint64(r.Size))
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.prevTime = r.Time
	if r.Doc > w.maxDoc {
		w.maxDoc = r.Doc
	}
	w.hdr.numRequests++
	return nil
}

// Finish writes the symbol table and back-patches the header. numClients is
// the client-ID space; urlAt returns the URL for document ID i (pass nil to
// omit the symbol table — replay does not need it). urlAt is called once per
// ID in order, so a constant-memory generator can re-derive URLs instead of
// holding them.
func (w *BTRWriter) Finish(numClients, numDocs int, urlAt func(i int) string) error {
	if w.closed {
		return errors.New("trace: btr writer already finished")
	}
	w.closed = true
	if numDocs <= int(w.maxDoc) {
		return fmt.Errorf("trace: btr finish: numDocs %d does not cover max doc ID %d", numDocs, w.maxDoc)
	}
	if numClients < 0 || int64(numClients) > math.MaxUint32+1 {
		return fmt.Errorf("trace: btr finish: numClients %d out of range", numClients)
	}
	w.hdr.numClients = int64(numClients)
	w.hdr.numDocs = int64(numDocs)
	if urlAt != nil {
		w.hdr.symtabOff = w.hdr.size() + w.hdr.numRequests*btrRecordSize
		var lenBuf [4]byte
		for i := 0; i < numDocs; i++ {
			url := urlAt(i)
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(url)))
			if _, err := w.bw.Write(lenBuf[:]); err != nil {
				return err
			}
			if _, err := w.bw.WriteString(url); err != nil {
				return err
			}
		}
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if _, err := w.ws.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("trace: btr finish: header patch seek: %w", err)
	}
	if _, err := w.ws.Write(w.hdr.marshal()); err != nil {
		return fmt.Errorf("trace: btr finish: header patch: %w", err)
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// WriteBTR serializes an in-memory trace (counts known up front, no seeking
// or back-patch needed — any io.Writer works).
func WriteBTR(w io.Writer, t *Trace) error {
	syms := t.Intern()
	hdr := btrHeader{
		numClients:  int64(t.NumClients),
		numDocs:     int64(syms.Len()),
		numRequests: int64(len(t.Requests)),
		name:        t.Name,
	}
	hdr.symtabOff = hdr.size() + hdr.numRequests*btrRecordSize
	bw := bufio.NewWriterSize(w, 256*1024)
	if _, err := bw.Write(hdr.marshal()); err != nil {
		return err
	}
	var rec [btrRecordSize]byte
	le := binary.LittleEndian
	for i := range t.Requests {
		r := &t.Requests[i]
		if r.Client < 0 || int64(r.Client) > math.MaxUint32 {
			return fmt.Errorf("trace: btr write: request %d: client %d out of range", i, r.Client)
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace: btr write: request %d: non-positive size %d", i, r.Size)
		}
		le.PutUint64(rec[0:], math.Float64bits(r.Time))
		le.PutUint32(rec[8:], uint32(r.Client))
		le.PutUint32(rec[12:], uint32(r.Doc))
		le.PutUint64(rec[16:], uint64(r.Size))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	var lenBuf [4]byte
	for i := 0; i < syms.Len(); i++ {
		url := syms.String(intern.ID(i))
		le.PutUint32(lenBuf[:], uint32(len(url)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(url); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BTRReader streams records from the binary format. Counts come from the
// header, so NumClients/NumDocs are exact before the first Next call, and
// every record is validated as it streams: doc and client IDs in range,
// positive size, non-decreasing time. URLs are NOT materialized — Request.URL
// stays empty; call ReadSymbols after draining if the strings are needed.
type BTRReader struct {
	br       *bufio.Reader
	hdr      btrHeader
	read     int64 // records consumed
	prevTime float64
	eof      bool
}

// OpenBTR reads the header and positions the stream at the first record.
func OpenBTR(r io.Reader) (*BTRReader, error) {
	br := bufio.NewReaderSize(r, 256*1024)
	hdr, err := readBTRHeader(br)
	if err != nil {
		return nil, err
	}
	return &BTRReader{br: br, hdr: hdr}, nil
}

// Name reports the trace name from the header.
func (r *BTRReader) Name() string { return r.hdr.name }

// NumClients reports the header's client-ID space.
func (r *BTRReader) NumClients() int { return int(r.hdr.numClients) }

// NumDocs reports the header's document-ID space.
func (r *BTRReader) NumDocs() int { return int(r.hdr.numDocs) }

// NumRequests reports the header's record count.
func (r *BTRReader) NumRequests() int64 { return r.hdr.numRequests }

// Close is a no-op; the caller owns the underlying reader.
func (r *BTRReader) Close() error { return nil }

// Next decodes up to len(buf) records. See Stream.
func (r *BTRReader) Next(buf []Request) (int, error) {
	if r.eof || r.read >= r.hdr.numRequests {
		r.eof = true
		return 0, io.EOF
	}
	n := 0
	var rec [btrRecordSize]byte
	le := binary.LittleEndian
	for n < len(buf) && r.read < r.hdr.numRequests {
		if _, err := io.ReadFull(r.br, rec[:]); err != nil {
			return 0, fmt.Errorf("trace: btr record %d/%d truncated: %w", r.read, r.hdr.numRequests, err)
		}
		req := Request{
			Time:   math.Float64frombits(le.Uint64(rec[0:])),
			Client: int(le.Uint32(rec[8:])),
			Doc:    intern.ID(int32(le.Uint32(rec[12:]))),
			Size:   int64(le.Uint64(rec[16:])),
		}
		if int64(req.Doc) < 0 || int64(req.Doc) >= r.hdr.numDocs {
			return 0, fmt.Errorf("trace: btr record %d: symbol-table index %d out of range [0,%d)", r.read, int32(req.Doc), r.hdr.numDocs)
		}
		if int64(req.Client) >= r.hdr.numClients {
			return 0, fmt.Errorf("trace: btr record %d: client %d out of range [0,%d)", r.read, req.Client, r.hdr.numClients)
		}
		if req.Size <= 0 {
			return 0, fmt.Errorf("trace: btr record %d: non-positive size %d", r.read, req.Size)
		}
		if math.IsNaN(req.Time) || math.IsInf(req.Time, 0) || (r.read > 0 && req.Time < r.prevTime) {
			return 0, fmt.Errorf("trace: btr record %d: time %g not monotone (prev %g)", r.read, req.Time, r.prevTime)
		}
		r.prevTime = req.Time
		buf[n] = req
		n++
		r.read++
	}
	return n, nil
}

// ReadSymbols reads the URL symbol table that follows the records into a
// fresh interning table (IDs match record Doc IDs). It must be called after
// Next has returned io.EOF; traces written without a symbol table return an
// error.
func (r *BTRReader) ReadSymbols() (*intern.Table, error) {
	if r.read < r.hdr.numRequests {
		return nil, fmt.Errorf("trace: btr symbols requested with %d/%d records unread", r.hdr.numRequests-r.read, r.hdr.numRequests)
	}
	if r.hdr.symtabOff == 0 {
		return nil, errors.New("trace: btr file carries no symbol table")
	}
	sizeHint := int(r.hdr.numDocs)
	if sizeHint > 1<<20 { // corrupt headers must not drive allocation
		sizeHint = 1 << 20
	}
	syms := intern.NewTable(sizeHint)
	var lenBuf [4]byte
	url := make([]byte, 0, 256)
	for i := int64(0); i < r.hdr.numDocs; i++ {
		if _, err := io.ReadFull(r.br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("trace: btr symbol %d/%d truncated: %w", i, r.hdr.numDocs, err)
		}
		urlLen := binary.LittleEndian.Uint32(lenBuf[:])
		if urlLen == 0 || urlLen > btrMaxURLLen {
			return nil, fmt.Errorf("trace: btr symbol %d: URL length %d out of range (0,%d]", i, urlLen, btrMaxURLLen)
		}
		if cap(url) < int(urlLen) {
			url = make([]byte, urlLen)
		}
		url = url[:urlLen]
		if _, err := io.ReadFull(r.br, url); err != nil {
			return nil, fmt.Errorf("trace: btr symbol %d/%d truncated: %w", i, r.hdr.numDocs, err)
		}
		if id := syms.InternBytes(url); int64(id) != i {
			return nil, fmt.Errorf("trace: btr symbol %d duplicates symbol %d (%q)", i, id, url)
		}
	}
	return syms, nil
}

// ReadBTR materializes a full Trace — records, URLs, symbol table — from the
// binary format. The streaming API (OpenBTR) is the out-of-core path; this
// is the convenience for tools and tests.
func ReadBTR(rd io.Reader) (*Trace, error) {
	r, err := OpenBTR(rd)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: r.Name(), NumClients: r.NumClients()}
	if n := r.NumRequests(); n > 0 {
		// Cap the preallocation: a corrupt header may claim absurd counts
		// that the record stream (validated incrementally) cannot back.
		if n > 1<<20 {
			n = 1 << 20
		}
		t.Requests = make([]Request, 0, n)
	}
	buf := make([]Request, StreamBatchSize)
	for {
		n, err := r.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, buf[:n]...)
	}
	syms, err := r.ReadSymbols()
	if err != nil {
		return nil, err
	}
	t.Syms = syms
	for i := range t.Requests {
		t.Requests[i].URL = syms.String(t.Requests[i].Doc)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
