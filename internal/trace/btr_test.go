package trace

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"baps/internal/intern"
)

// randomTrace builds a valid interned trace for round-trip tests.
func randomTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	nc := rng.Intn(8) + 1
	tr := &Trace{Name: "rnd", NumClients: nc}
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += rng.Float64()
		tr.Requests = append(tr.Requests, Request{
			Time:   tm,
			Client: rng.Intn(nc),
			URL:    "http://h/" + strings.Repeat("x", rng.Intn(20)+1),
			Size:   int64(rng.Intn(1<<16) + 1),
		})
	}
	tr.Intern()
	return tr
}

func TestBTRRoundTrip(t *testing.T) {
	tr := &Trace{Name: "btr-round", NumClients: 3, Requests: []Request{
		req(0, 0, "http://a/x", 100),
		req(0.5, 2, "http://b/y", 2048),
		req(1.25, 1, "http://a/x", 100),
	}}
	tr.Intern()
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		t.Fatalf("WriteBTR: %v", err)
	}
	got, err := ReadBTR(&buf)
	if err != nil {
		t.Fatalf("ReadBTR: %v", err)
	}
	if got.Name != "btr-round" || got.NumClients != 3 {
		t.Fatalf("header mismatch: %q/%d", got.Name, got.NumClients)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatalf("Requests = %+v, want %+v", got.Requests, tr.Requests)
	}
	if got.NumDocs() != tr.NumDocs() {
		t.Fatalf("NumDocs = %d, want %d", got.NumDocs(), tr.NumDocs())
	}
}

// The binary format preserves exact float64 times — unlike the text format's
// millisecond quantization.
func TestBTRRoundTripExactTimes(t *testing.T) {
	tr := &Trace{Name: "t", NumClients: 1, Requests: []Request{
		req(0.1+0.2, 0, "http://a/x", 1), // 0.30000000000000004
		req(1.0/3.0+1, 0, "http://a/x", 1),
	}}
	tr.Intern()
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		t.Fatalf("WriteBTR: %v", err)
	}
	got, err := ReadBTR(&buf)
	if err != nil {
		t.Fatalf("ReadBTR: %v", err)
	}
	for i := range got.Requests {
		if got.Requests[i].Time != tr.Requests[i].Time {
			t.Fatalf("time %d: %v != %v", i, got.Requests[i].Time, tr.Requests[i].Time)
		}
	}
}

func TestBTRStreamingWriterRoundTrip(t *testing.T) {
	tr := randomTrace(7, 500)
	path := filepath.Join(t.TempDir(), "t.btr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewBTRWriter(f, tr.Name)
	if err != nil {
		t.Fatalf("NewBTRWriter: %v", err)
	}
	for _, r := range tr.Requests {
		if err := w.WriteRequest(r); err != nil {
			t.Fatalf("WriteRequest: %v", err)
		}
	}
	if err := w.Finish(tr.NumClients, tr.NumDocs(), func(i int) string { return tr.Syms.String(intern.ID(i)) }); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The streaming writer's output must be byte-identical to WriteBTR's.
	var want bytes.Buffer
	if err := WriteBTR(&want, tr); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streaming writer output differs from WriteBTR (%d vs %d bytes)", len(got), want.Len())
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	back, err := ReadBTR(rf)
	if err != nil {
		t.Fatalf("ReadBTR: %v", err)
	}
	if !reflect.DeepEqual(back.Requests, tr.Requests) {
		t.Fatal("streaming round trip changed requests")
	}
}

func TestBTRStreamWithoutSymbols(t *testing.T) {
	tr := randomTrace(3, 100)
	path := filepath.Join(t.TempDir(), "nosym.btr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewBTRWriter(f, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		if err := w.WriteRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(tr.NumClients, tr.NumDocs(), nil); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := OpenBTR(rf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	buf := make([]Request, 33)
	for {
		k, err := r.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := 0; i < k; i++ {
			want := tr.Requests[n]
			got := buf[i]
			if got.Time != want.Time || got.Client != want.Client || got.Doc != want.Doc || got.Size != want.Size {
				t.Fatalf("record %d = %+v, want %+v", n, got, want)
			}
			if got.URL != "" {
				t.Fatalf("record %d carries a URL (%q); records must stream without strings", n, got.URL)
			}
			n++
		}
	}
	if n != len(tr.Requests) {
		t.Fatalf("streamed %d records, want %d", n, len(tr.Requests))
	}
	if _, err := r.ReadSymbols(); err == nil {
		t.Fatal("ReadSymbols succeeded on a symbol-free file")
	}
}

func validBTR(t *testing.T) []byte {
	t.Helper()
	tr := &Trace{Name: "c", NumClients: 2, Requests: []Request{
		req(0, 0, "http://a/x", 10),
		req(1, 1, "http://b/y", 20),
	}}
	tr.Intern()
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBTRCorruption(t *testing.T) {
	valid := validBTR(t)

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xff
		if _, err := ReadBTR(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted bad magic")
		} else if !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("wrong error: %v", err)
		}
	})

	t.Run("truncated header", func(t *testing.T) {
		for cut := 0; cut < btrFixedHeaderSize+1; cut += 7 {
			if _, err := ReadBTR(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("accepted header truncated at %d", cut)
			}
		}
	})

	t.Run("truncated record tail", func(t *testing.T) {
		hdrEnd := btrFixedHeaderSize + 1 // name "c"
		cut := hdrEnd + btrRecordSize + 5
		_, err := ReadBTR(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatal("accepted truncated record tail")
		}
		if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("wrong error: %v", err)
		}
	})

	t.Run("symbol-table index out of range", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		// Record 0's doc field sits at header + 12.
		off := btrFixedHeaderSize + 1 + 12
		b[off] = 0xff
		b[off+1] = 0xff
		_, err := ReadBTR(bytes.NewReader(b))
		if err == nil {
			t.Fatal("accepted out-of-range doc ID")
		}
		if !strings.Contains(err.Error(), "symbol-table index") {
			t.Fatalf("wrong error: %v", err)
		}
	})

	t.Run("client out of range", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		off := btrFixedHeaderSize + 1 + 8
		b[off] = 0xff
		if _, err := ReadBTR(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted out-of-range client")
		}
	})

	t.Run("truncated symbol table", func(t *testing.T) {
		if _, err := ReadBTR(bytes.NewReader(valid[:len(valid)-3])); err == nil {
			t.Fatal("accepted truncated symbol table")
		}
	})

	t.Run("time regression", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		// Swap the two records.
		start := btrFixedHeaderSize + 1
		r0 := append([]byte(nil), b[start:start+btrRecordSize]...)
		copy(b[start:], b[start+btrRecordSize:start+2*btrRecordSize])
		copy(b[start+btrRecordSize:], r0)
		if _, err := ReadBTR(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted decreasing time")
		}
	})
}

// FuzzBTR: arbitrary bytes through the binary reader must never panic, and
// whatever parses must validate.
func FuzzBTR(f *testing.F) {
	f.Add(validBTRSeed())
	f.Add([]byte{})
	f.Add([]byte("BAPSBTR1"))
	seed := validBTRSeed()
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBTR(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted invalid trace: %v", verr)
		}
	})
}

func validBTRSeed() []byte {
	tr := &Trace{Name: "c", NumClients: 2, Requests: []Request{
		req(0, 0, "http://a/x", 10),
		req(1, 1, "http://b/y", 20),
	}}
	tr.Intern()
	var buf bytes.Buffer
	if err := WriteBTR(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
