package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := &Trace{Name: "round", NumClients: 3, Requests: []Request{
		req(0, 0, "http://a/x", 100),
		req(0.5, 2, "http://b/y", 2048),
		req(1.25, 1, "http://a/x", 100),
	}}
	tr.Intern()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf, "fallback")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != "round" {
		t.Errorf("Name = %q, want round (from header)", got.Name)
	}
	if got.NumClients != 3 {
		t.Errorf("NumClients = %d, want 3", got.NumClients)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Errorf("Requests = %+v, want %+v", got.Requests, tr.Requests)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields": "1.0 0 100\n",
		"bad time":     "x 0 100 u\n",
		"bad client":   "1.0 x 100 u\n",
		"bad size":     "1.0 0 x u\n",
		"invalid size": "1.0 0 0 u\n",
		"decreasing":   "2.0 0 1 u\n1.0 0 1 u\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in), "t"); err == nil {
			t.Errorf("%s: Read accepted %q", name, in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n1.0 0 10 u\n# another\n2.0 0 10 u\n"
	tr, err := Read(strings.NewReader(in), "t")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("got %d requests, want 2", len(tr.Requests))
	}
}

const squidSample = `874.5 120 client-a TCP_MISS/200 4000 GET http://w/x - DIRECT/w text/html
870.0 80 client-b TCP_HIT/200 2000 GET http://w/y - NONE/- text/html
875.0 10 client-a TCP_MISS/200 0 GET http://w/zero - DIRECT/w text/html
876.0 10 client-c TCP_MISS/200 900 POST http://w/post - DIRECT/w text/html
877.5 10 client-b TCP_HIT/200 2000 GET http://w/y - NONE/- text/html
`

func TestParseSquid(t *testing.T) {
	tr, err := ParseSquid(strings.NewReader(squidSample), "squid")
	if err != nil {
		t.Fatalf("ParseSquid: %v", err)
	}
	// zero-size and POST lines are dropped; 3 GETs remain.
	if len(tr.Requests) != 3 {
		t.Fatalf("got %d requests, want 3: %+v", len(tr.Requests), tr.Requests)
	}
	// Sorted by time and rebased to 0: 870 → 0, 874.5 → 4.5, 877.5 → 7.5.
	if tr.Requests[0].Time != 0 || tr.Requests[0].URL != "http://w/y" {
		t.Fatalf("first request wrong: %+v", tr.Requests[0])
	}
	if tr.Requests[1].Time != 4.5 || tr.Requests[2].Time != 7.5 {
		t.Fatalf("rebase wrong: %+v", tr.Requests)
	}
	// client-a and client-b map to dense distinct ids.
	if tr.NumClients != 2 {
		t.Fatalf("NumClients = %d, want 2 (client-c only issued POST)", tr.NumClients)
	}
	if tr.Requests[0].Client == tr.Requests[1].Client {
		t.Fatal("distinct hosts mapped to the same client id")
	}
}

func TestParseSquidErrors(t *testing.T) {
	bad := []string{
		"874.5 120 c TCP_MISS/200 4000 GET\n", // too few fields
		"nan-bad 1 c a x GET http://u - d t\n",
		"874.5 1 c a notanumber GET http://u - d t\n",
	}
	for _, in := range bad {
		if _, err := ParseSquid(strings.NewReader(in), "t"); err == nil {
			t.Errorf("ParseSquid accepted %q", in)
		}
	}
}

// TestQuickRoundTrip: Write→Read is the identity on arbitrary valid traces
// (times quantized to the milliseconds the format preserves).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nc := r.Intn(4) + 1
		tr := &Trace{Name: "rt", NumClients: nc}
		tm := 0.0
		for i := 0; i < r.Intn(100); i++ {
			tm += float64(r.Intn(1000)) / 1000
			tr.Requests = append(tr.Requests, Request{
				Time: tm, Client: r.Intn(nc),
				URL:  "http://site/" + string(rune('a'+r.Intn(26))),
				Size: int64(r.Intn(1<<20) + 1),
			})
		}
		// Writer counts clients from the requests actually present.
		max := -1
		for _, q := range tr.Requests {
			if q.Client > max {
				max = q.Client
			}
		}
		tr.NumClients = max + 1
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Errorf("Write: %v", err)
			return false
		}
		got, err := Read(&buf, "rt")
		if err != nil {
			t.Errorf("Read: %v", err)
			return false
		}
		if len(got.Requests) != len(tr.Requests) || got.NumClients != tr.NumClients {
			t.Errorf("round trip changed shape: %d/%d vs %d/%d", len(got.Requests), got.NumClients, len(tr.Requests), tr.NumClients)
			return false
		}
		for i := range got.Requests {
			a, b := got.Requests[i], tr.Requests[i]
			if a.Client != b.Client || a.URL != b.URL || a.Size != b.Size {
				t.Errorf("request %d mismatch: %+v vs %+v", i, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
