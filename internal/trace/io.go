package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Native on-disk format: one request per line,
//
//	<time-seconds> <client-id> <size-bytes> <url>
//
// with '#' comment lines and blank lines ignored. This is the format written
// by cmd/tracegen and read back by cmd/bapsim.

// Write serializes a trace in the native format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# baps trace %s clients=%d requests=%d\n", t.Name, t.NumClients, len(t.Requests)); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%.3f %d %d %s\n", r.Time, r.Client, r.Size, r.URL); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the native format by draining a TextStream. The trace name is
// taken from the header comment when present, else name is used. Oversized
// lines surface as ErrLineTooLong with the line number.
func Read(r io.Reader, name string) (*Trace, error) {
	ts := NewTextStream(r, name)
	t := &Trace{Name: name, Syms: ts.Syms()}
	buf := make([]Request, StreamBatchSize)
	for {
		n, err := ts.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, buf[:n]...)
	}
	t.Name = ts.Name()
	t.NumClients = ts.NumClients()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseSquid parses a Squid access.log (native squid format):
//
//	timestamp elapsed client action/code size method URL rfc931 hierarchy/host type
//
// Client host strings are mapped to dense ids in first-seen order. Only
// lines whose method is GET and whose size is positive are kept; the action
// field is not interpreted (the simulator replays the request stream and
// forms its own hit/miss decisions). Timestamps are rebased so the first
// request is at t=0. Out-of-order log lines (common in squid logs, which
// record completion time) are sorted by time.
func ParseSquid(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	clients := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 7 {
			return nil, fmt.Errorf("squid: line %d: want >=7 fields, got %d", lineNo, len(f))
		}
		ts, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("squid: line %d: bad timestamp %q: %v", lineNo, f[0], err)
		}
		size, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("squid: line %d: bad size %q: %v", lineNo, f[4], err)
		}
		method, url := f[5], f[6]
		if method != "GET" || size <= 0 {
			continue
		}
		host := f[2]
		id, ok := clients[host]
		if !ok {
			id = len(clients)
			clients[host] = id
		}
		t.Requests = append(t.Requests, Request{Time: ts, Client: id, Size: size, URL: url})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.NumClients = len(clients)
	sort.SliceStable(t.Requests, func(i, j int) bool { return t.Requests[i].Time < t.Requests[j].Time })
	if len(t.Requests) > 0 {
		base := t.Requests[0].Time
		for i := range t.Requests {
			t.Requests[i].Time -= base
		}
	}
	t.Intern()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
