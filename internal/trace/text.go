package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"

	"baps/internal/intern"
)

// ErrLineTooLong reports an input line exceeding the scanner cap. The text
// formats have no legitimate multi-megabyte lines; hitting the cap means a
// corrupt or binary input, and the error carries the offending line number
// instead of bufio's generic token-too-long failure.
var ErrLineTooLong = errors.New("line exceeds maximum length")

// maxLineBytes caps a single text-format line (URLs included).
const maxLineBytes = 4 * 1024 * 1024

// TextStream decodes the native text format incrementally behind the Stream
// interface: one buffered scanner, zero allocations per line (fields are
// sliced out of the scan buffer; the URL string is allocated only on the
// first sight of each document, by Table.InternBytes), and no materialized
// []Request.
//
// NumClients and NumDocs grow as lines are decoded and are final only after
// Next returns io.EOF; the simulator's streaming paths take both from a
// prior Stats pass instead.
type TextStream struct {
	sc        *bufio.Scanner
	name      string
	syms      *intern.Table
	lineNo    int
	maxClient int
	eof       bool
}

// NewTextStream starts decoding the native format from r. The trace name is
// taken from the header comment when present, else name is used.
func NewTextStream(r io.Reader, name string) *TextStream {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &TextStream{sc: sc, name: name, syms: intern.NewTable(0), maxClient: -1}
}

// Syms exposes the symbol table the stream interns into; IDs are dense in
// first-appearance order, matching (*Trace).Intern.
func (ts *TextStream) Syms() *intern.Table { return ts.syms }

// Name reports the trace name (header comment wins once seen).
func (ts *TextStream) Name() string { return ts.name }

// NumClients reports the client-ID space decoded so far.
func (ts *TextStream) NumClients() int { return ts.maxClient + 1 }

// NumDocs reports the document-ID space decoded so far.
func (ts *TextStream) NumDocs() int { return ts.syms.Len() }

// Close is a no-op; the caller owns the underlying reader.
func (ts *TextStream) Close() error { return nil }

// Next decodes up to len(buf) requests. See Stream.
func (ts *TextStream) Next(buf []Request) (int, error) {
	if ts.eof {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		if !ts.sc.Scan() {
			if err := ts.sc.Err(); err != nil {
				if errors.Is(err, bufio.ErrTooLong) {
					return 0, fmt.Errorf("trace: line %d: %w (cap %d bytes)", ts.lineNo+1, ErrLineTooLong, maxLineBytes)
				}
				return 0, err
			}
			ts.eof = true
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		ts.lineNo++
		line := trimASCIISpace(ts.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			// Header comment: "# baps trace <name> ..." sets the name.
			if f := bytes.Fields(line); len(f) >= 4 && string(f[1]) == "baps" && string(f[2]) == "trace" {
				ts.name = string(f[3])
			}
			continue
		}
		r, err := ts.parseLine(line)
		if err != nil {
			return 0, err
		}
		buf[n] = r
		n++
	}
	return n, nil
}

// parseLine decodes "<time> <client> <size> <url>" from a trimmed line.
func (ts *TextStream) parseLine(line []byte) (Request, error) {
	var f [4][]byte
	nf := 0
	for i := 0; i < len(line); {
		for i < len(line) && isASCIISpace(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && !isASCIISpace(line[i]) {
			i++
		}
		if nf == 4 {
			return Request{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", ts.lineNo, 5+countFields(line[i:]))
		}
		f[nf] = line[start:i]
		nf++
	}
	if nf != 4 {
		return Request{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", ts.lineNo, nf)
	}
	tm, err := parseFloatBytes(f[0])
	if err != nil {
		return Request{}, fmt.Errorf("trace: line %d: bad time %q: %v", ts.lineNo, f[0], err)
	}
	client, err := parseIntBytes(f[1])
	if err != nil {
		return Request{}, fmt.Errorf("trace: line %d: bad client %q: %v", ts.lineNo, f[1], err)
	}
	size, err := parseInt64Bytes(f[2])
	if err != nil {
		return Request{}, fmt.Errorf("trace: line %d: bad size %q: %v", ts.lineNo, f[2], err)
	}
	if client > ts.maxClient {
		ts.maxClient = client
	}
	doc := ts.syms.InternBytes(f[3])
	return Request{Time: tm, Client: client, URL: ts.syms.String(doc), Doc: doc, Size: size}, nil
}

func isASCIISpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

func trimASCIISpace(b []byte) []byte {
	for len(b) > 0 && isASCIISpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isASCIISpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func countFields(b []byte) int {
	n := 0
	inField := false
	for _, c := range b {
		if isASCIISpace(c) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
	}
	return n
}

// pow10tab holds the exactly-representable powers of ten (10^0..10^22).
var pow10tab = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes parses a decimal float without allocating. The fast path
// covers plain decimals with <= 19 digits and a mantissa below 2^53: the
// value m/10^f divides two exactly-representable floats, so IEEE division
// yields the correctly rounded result — bit-identical to strconv.ParseFloat.
// Everything else (exponents, huge mantissas, inf/nan) falls back to strconv
// with a one-off string allocation.
func parseFloatBytes(b []byte) (float64, error) {
	if v, ok := fastFloat(b); ok {
		return v, nil
	}
	return strconv.ParseFloat(string(b), 64)
}

func fastFloat(b []byte) (float64, bool) {
	i := 0
	neg := false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	var m uint64
	digits := 0
	frac := -1
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			if frac >= 0 {
				return 0, false
			}
			frac = 0
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		if digits >= 19 {
			return 0, false
		}
		m = m*10 + uint64(c-'0')
		digits++
		if frac >= 0 {
			frac++
		}
	}
	if digits == 0 {
		return 0, false
	}
	if m >= 1<<53 {
		return 0, false
	}
	if frac < 0 {
		frac = 0
	}
	v := float64(m) / pow10tab[frac]
	if neg {
		v = -v
	}
	return v, true
}

// parseIntBytes parses a decimal int without allocating; out-of-fast-path
// inputs fall back to strconv for exact error text and overflow handling.
func parseIntBytes(b []byte) (int, error) {
	if v, ok := fastInt(b); ok {
		return int(v), nil
	}
	return strconv.Atoi(string(b))
}

// parseInt64Bytes is parseIntBytes for int64.
func parseInt64Bytes(b []byte) (int64, error) {
	if v, ok := fastInt(b); ok {
		return v, nil
	}
	return strconv.ParseInt(string(b), 10, 64)
}

func fastInt(b []byte) (int64, bool) {
	i := 0
	neg := false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	if i >= len(b) || len(b)-i > 18 { // > 18 digits could overflow; punt
		return 0, false
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}
