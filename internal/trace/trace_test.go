package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func req(t float64, c int, url string, size int64) Request {
	return Request{Time: t, Client: c, URL: url, Size: size}
}

func TestValidate(t *testing.T) {
	good := &Trace{Name: "g", NumClients: 2, Requests: []Request{
		req(0, 0, "u1", 10), req(1, 1, "u2", 20), req(1, 0, "u1", 10),
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"client out of range", &Trace{NumClients: 1, Requests: []Request{req(0, 1, "u", 1)}}},
		{"negative client", &Trace{NumClients: 1, Requests: []Request{req(0, -1, "u", 1)}}},
		{"zero size", &Trace{NumClients: 1, Requests: []Request{req(0, 0, "u", 0)}}},
		{"empty url", &Trace{NumClients: 1, Requests: []Request{req(0, 0, "", 1)}}},
		{"time decreasing", &Trace{NumClients: 1, Requests: []Request{req(5, 0, "u", 1), req(4, 0, "u", 1)}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", c.name)
		}
	}
}

func TestComputeStatsBasic(t *testing.T) {
	tr := &Trace{Name: "s", NumClients: 2, Requests: []Request{
		req(0, 0, "a", 100), // miss (first ref)
		req(1, 0, "a", 100), // hit, same client
		req(2, 1, "a", 100), // hit, shared (last client was 0)
		req(3, 1, "b", 50),  // miss
		req(4, 0, "b", 60),  // size changed → miss
		req(5, 1, "b", 60),  // hit, shared
	}}
	s := Compute(tr)
	if s.NumRequests != 6 || s.NumClients != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.TotalBytes != 100+100+100+50+60+60 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes)
	}
	if s.UniqueDocs != 2 {
		t.Fatalf("UniqueDocs = %d, want 2", s.UniqueDocs)
	}
	// Infinite cache stores a@100 and b at its last size 60.
	if s.InfiniteCacheBytes != 160 {
		t.Fatalf("InfiniteCacheBytes = %d, want 160", s.InfiniteCacheBytes)
	}
	if got, want := s.MaxHitRatio, 3.0/6.0; got != want {
		t.Fatalf("MaxHitRatio = %g, want %g", got, want)
	}
	if got, want := s.MaxByteHitRatio, float64(100+100+60)/470.0; got != want {
		t.Fatalf("MaxByteHitRatio = %g, want %g", got, want)
	}
	if s.SharedRequests != 2 {
		t.Fatalf("SharedRequests = %d, want 2", s.SharedRequests)
	}
	// Client 0 uniquely requested a@100 + b@60 = 160; client 1 a@100 + b(50→60) = 160.
	if s.ClientInfiniteBytes[0] != 160 || s.ClientInfiniteBytes[1] != 160 {
		t.Fatalf("ClientInfiniteBytes = %v", s.ClientInfiniteBytes)
	}
	if s.AvgClientInfiniteBytes() != 160 {
		t.Fatalf("AvgClientInfiniteBytes = %d", s.AvgClientInfiniteBytes())
	}
}

func TestComputeEmptyTrace(t *testing.T) {
	s := Compute(&Trace{Name: "empty"})
	if s.MaxHitRatio != 0 || s.MaxByteHitRatio != 0 || s.NumRequests != 0 {
		t.Fatalf("empty trace stats: %+v", s)
	}
	if s.AvgClientInfiniteBytes() != 0 {
		t.Fatal("AvgClientInfiniteBytes on empty trace should be 0")
	}
}

func TestSubsetClientsFull(t *testing.T) {
	tr := &Trace{Name: "x", NumClients: 4, Requests: []Request{
		req(0, 0, "a", 1), req(1, 1, "b", 1), req(2, 2, "c", 1), req(3, 3, "d", 1),
	}}
	if got := SubsetClients(tr, 1.0, 7); got != tr {
		t.Fatal("fraction=1 must return the original trace")
	}
}

func TestSubsetClientsHalf(t *testing.T) {
	tr := &Trace{Name: "x", NumClients: 4, Requests: []Request{
		req(0, 0, "a", 1), req(1, 1, "b", 1), req(2, 2, "c", 1), req(3, 3, "d", 1),
		req(4, 0, "a", 1), req(5, 2, "c", 1),
	}}
	sub := SubsetClients(tr, 0.5, 7)
	if sub.NumClients != 2 {
		t.Fatalf("NumClients = %d, want 2", sub.NumClients)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset invalid: %v", err)
	}
	// Deterministic: same seed, same subset.
	sub2 := SubsetClients(tr, 0.5, 7)
	if !reflect.DeepEqual(sub.Requests, sub2.Requests) {
		t.Fatal("SubsetClients not deterministic")
	}
}

func TestSubsetClientsNested(t *testing.T) {
	// The 25% client set must be contained in the 50% set (same seed),
	// mirroring how the paper grows its client population.
	tr := &Trace{Name: "n", NumClients: 40}
	for i := 0; i < 40; i++ {
		tr.Requests = append(tr.Requests, req(float64(i), i, "u", 1))
	}
	urls25 := clientURLSet(SubsetClients(tr, 0.25, 3), tr)
	urls50 := clientURLSet(SubsetClients(tr, 0.50, 3), tr)
	for c := range urls25 {
		if !urls50[c] {
			t.Fatalf("client (orig time %v) in 25%% subset but not in 50%% subset", c)
		}
	}
	if len(urls25) != 10 || len(urls50) != 20 {
		t.Fatalf("subset sizes: 25%%=%d 50%%=%d", len(urls25), len(urls50))
	}
}

// clientURLSet identifies original clients by their (unique) request times.
func clientURLSet(sub, orig *Trace) map[float64]bool {
	out := map[float64]bool{}
	for _, r := range sub.Requests {
		out[r.Time] = true
	}
	return out
}

func TestSubsetClientsEdges(t *testing.T) {
	tr := &Trace{Name: "e", NumClients: 3, Requests: []Request{req(0, 0, "a", 1)}}
	if got := SubsetClients(tr, 0, 1); got.NumClients != 0 || len(got.Requests) != 0 {
		t.Fatalf("fraction=0: %+v", got)
	}
	one := SubsetClients(tr, 0.01, 1)
	if one.NumClients != 1 {
		t.Fatalf("tiny fraction must keep at least 1 client, got %d", one.NumClients)
	}
}

func TestConcat(t *testing.T) {
	day1 := &Trace{Name: "d1", NumClients: 3, Requests: []Request{
		req(0, 0, "a", 10), req(100, 2, "b", 20),
	}}
	day2 := &Trace{Name: "d2", NumClients: 2, Requests: []Request{
		req(0, 1, "a", 10), req(50, 0, "c", 5),
	}}
	got := Concat(10, day1, day2)
	if got.NumClients != 3 {
		t.Fatalf("NumClients = %d", got.NumClients)
	}
	if len(got.Requests) != 4 {
		t.Fatalf("requests = %d", len(got.Requests))
	}
	// Day 2 starts 10s after day 1's last request (t=100) → t=110, 160.
	if got.Requests[2].Time != 110 || got.Requests[3].Time != 160 {
		t.Fatalf("offsets wrong: %+v", got.Requests)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("concat invalid: %v", err)
	}
	// Client identity preserved: client 1's request stays client 1.
	if got.Requests[2].Client != 1 {
		t.Fatal("client ids not preserved")
	}
	if empty := Concat(5); len(empty.Requests) != 0 {
		t.Fatal("empty concat")
	}
}

// TestQuickStatsConservation: max hit ratio and byte hit ratio are in [0,1],
// shared requests never exceed hits, and per-client infinite bytes sum to at
// least the global infinite bytes (clients can duplicate documents).
func TestQuickStatsConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nc := r.Intn(5) + 1
		tr := &Trace{Name: "q", NumClients: nc}
		tm := 0.0
		for i := 0; i < 300; i++ {
			tm += r.Float64()
			tr.Requests = append(tr.Requests, Request{
				Time:   tm,
				Client: r.Intn(nc),
				URL:    string(rune('a' + r.Intn(20))),
				Size:   int64(r.Intn(5)+1) * 10,
			})
		}
		s := Compute(tr)
		if s.MaxHitRatio < 0 || s.MaxHitRatio > 1 || s.MaxByteHitRatio < 0 || s.MaxByteHitRatio > 1 {
			t.Errorf("ratios out of range: %+v", s)
			return false
		}
		hits := int(s.MaxHitRatio*float64(s.NumRequests) + 0.5)
		if s.SharedRequests > hits {
			t.Errorf("SharedRequests %d > hits %d", s.SharedRequests, hits)
			return false
		}
		var perClient int64
		for _, b := range s.ClientInfiniteBytes {
			perClient += b
		}
		if perClient < s.InfiniteCacheBytes {
			t.Errorf("per-client infinite %d < global %d", perClient, s.InfiniteCacheBytes)
			return false
		}
		if s.TotalBytes < s.InfiniteCacheBytes {
			t.Errorf("TotalBytes %d < InfiniteCacheBytes %d", s.TotalBytes, s.InfiniteCacheBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
