module baps

go 1.22
