package baps

import (
	"context"
	"strings"
	"testing"
)

// smallOpts shrinks the experiment workloads for fast tests.
var smallOpts = Options{Scale: 0.03}

func TestGenerateTrace(t *testing.T) {
	tr, err := GenerateTrace("canet2", 0)
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTrace("nope", 0); err == nil {
		t.Fatal("unknown profile accepted")
	}
	scaled, err := GenerateTraceScaled("canet2", 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaled.Requests) >= len(tr.Requests) {
		t.Fatal("scaling did not shrink the trace")
	}
	reseeded, err := GenerateTrace("canet2", 777)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Requests[0] == tr.Requests[0] && reseeded.Requests[1] == tr.Requests[1] {
		t.Log("seed override produced identical prefix (unlikely but possible)")
	}
}

func TestProfileRegistryFacade(t *testing.T) {
	if len(Profiles()) != 5 || len(ProfileNames()) != 5 {
		t.Fatal("expected 5 profiles")
	}
	if len(Organizations()) != 5 {
		t.Fatal("expected 5 organizations")
	}
}

func TestRunFacade(t *testing.T) {
	tr, err := GenerateTraceScaled("nlanr-bo1", 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, DefaultSimConfig(BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(tr)
	if res.HitRatio() > st.MaxHitRatio+1e-9 {
		t.Fatalf("hit ratio %.4f above infinite-cache ceiling %.4f", res.HitRatio(), st.MaxHitRatio)
	}
}

func TestTable1Driver(t *testing.T) {
	tab, err := Table1(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"nlanr-uc", "nlanr-bo1", "bu-95", "bu-98", "canet2", "Max Hit Ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
}

func TestFigure2Driver(t *testing.T) {
	hit, byteHit, err := Figure2(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit.Lines) != 5 || len(byteHit.Lines) != 5 {
		t.Fatalf("Figure 2 lines: %d/%d", len(hit.Lines), len(byteHit.Lines))
	}
	// BAPS tops every size point on the hit-ratio figure.
	var baps, palb []float64
	for _, l := range hit.Lines {
		switch l.Name {
		case "browsers-aware-proxy-server":
			baps = l.Y
		case "proxy-and-local-browser":
			palb = l.Y
		}
	}
	if baps == nil || palb == nil {
		t.Fatal("expected organizations missing")
	}
	for i := range baps {
		if baps[i] < palb[i] {
			t.Errorf("size %g: BAPS %.2f < P+LB %.2f", hit.X[i], baps[i], palb[i])
		}
	}
}

func TestFigure3Driver(t *testing.T) {
	hit, byteHit, err := Figure3(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit.Lines) != 3 || len(byteHit.Lines) != 3 {
		t.Fatal("breakdown must have 3 components")
	}
	// Remote-browser hits must not be negligible at every size — the
	// point of Figure 3.
	for _, l := range hit.Lines {
		if l.Name == "remote-browsers" {
			total := 0.0
			for _, y := range l.Y {
				total += y
			}
			if total <= 0 {
				t.Error("no remote-browser hits anywhere")
			}
		}
	}
}

func TestFigure4Through7Drivers(t *testing.T) {
	drivers := map[string]func(Options) (*Series, *Series, error){
		"Figure4": Figure4, "Figure5": Figure5, "Figure6": Figure6, "Figure7": Figure7,
	}
	for name, f := range drivers {
		hit, byteHit, err := f(smallOpts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(hit.Lines) != 2 || len(byteHit.Lines) != 2 {
			t.Fatalf("%s: wrong line count", name)
		}
	}
}

func TestFigure8Driver(t *testing.T) {
	hr, bhr, err := Figure8(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.Lines) != 3 || len(bhr.Lines) != 3 {
		t.Fatal("Figure 8 needs 3 traces")
	}
	if len(hr.X) != 4 {
		t.Fatal("Figure 8 needs 4 client fractions")
	}
}

func TestMemoryStudyDriver(t *testing.T) {
	tab, err := MemoryStudyReport(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("memory study rows = %d", len(tab.Rows))
	}
}

func TestOverheadDriver(t *testing.T) {
	tab, err := OverheadReport(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("overhead rows = %d", len(tab.Rows))
	}
}

func TestIndexCompressionDriver(t *testing.T) {
	tab, err := IndexCompressionReport(Options{Scale: 0.02}, "nlanr-bo1", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("compression rows = %d", len(tab.Rows))
	}
}

func TestSecurityDriver(t *testing.T) {
	tab, err := SecurityReport(1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("security rows = %d", len(tab.Rows))
	}
}

func TestClusterLifecycle(t *testing.T) {
	pcfg := ProxyConfig{}
	c, err := StartCluster(ClusterConfig{
		Agents: 2,
		Proxy: func() ProxyConfig {
			pcfg.CacheCapacity = 1 << 20
			pcfg.MemFraction = 0.1
			pcfg.KeyBits = 1024
			pcfg.CachePeerDocs = true
			return pcfg
		}(),
		MutateAgent: func(i int, cfg *AgentConfig) { cfg.CacheCapacity = 1 << 20 },
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	u := c.DocURL("/hello?size=2000")
	_, src, err := c.Agents[0].Get(ctx, u)
	if err != nil || src != SourceOrigin {
		t.Fatalf("first get: %v %v", src, err)
	}
	_, src, err = c.Agents[1].Get(ctx, u)
	if err != nil || src != SourceProxy {
		t.Fatalf("second get: %v %v", src, err)
	}
	if c.Proxy.Snapshot().Requests != 2 {
		t.Fatalf("proxy requests = %d", c.Proxy.Snapshot().Requests)
	}
}
