package baps

import (
	"fmt"
	"io"
)

// AllReports runs every simulator-driven experiment that `bapsim all`
// regenerates — the tables, figures, and ablation studies — writing the
// rendered tables to w. It excludes only the live-HTTP cross-check
// (livecheck), which exercises real sockets rather than the simulator. It
// exists so the whole driver suite can be measured as one unit
// (BenchmarkAllExperiments) and regression-gated; cmd/bapsim remains the
// interactive front end.
func AllReports(o Options, w io.Writer) error {
	show := func(v interface{ String() string }, err error) error {
		if err != nil {
			return err
		}
		_, werr := fmt.Fprintln(w, v.String())
		return werr
	}
	series := func(h, b *Series, err error) error {
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, h.Table().String()); err != nil {
			return err
		}
		_, werr := fmt.Fprintln(w, b.Table().String())
		return werr
	}

	type step struct {
		name string
		run  func() error
	}
	steps := []step{
		{"table1", func() error { t, err := Table1(o); return show(t, err) }},
		{"fig2", func() error { h, b, err := Figure2(o); return series(h, b, err) }},
		{"fig3", func() error { h, b, err := Figure3(o); return series(h, b, err) }},
		{"fig4", func() error { h, b, err := Figure4(o); return series(h, b, err) }},
		{"fig5", func() error { h, b, err := Figure5(o); return series(h, b, err) }},
		{"fig6", func() error { h, b, err := Figure6(o); return series(h, b, err) }},
		{"fig7", func() error { h, b, err := Figure7(o); return series(h, b, err) }},
		{"fig8", func() error { h, b, err := Figure8(o); return series(h, b, err) }},
		{"memory", func() error { t, err := MemoryStudyReport(o); return show(t, err) }},
		{"overhead", func() error { t, err := OverheadReport(o); return show(t, err) }},
		{"compression", func() error { t, err := IndexCompressionReport(o, "nlanr-bo1", 0); return show(t, err) }},
		{"security", func() error { t, err := SecurityReport(2048, 8<<10); return show(t, err) }},
		{"ablation", func() error { t, err := AblationReport(o, "nlanr-bo1"); return show(t, err) }},
		{"cooperative", func() error { t, err := CooperativeReport(o, "nlanr-bo1", []int{2, 4, 8}); return show(t, err) }},
		{"hierarchy", func() error { t, err := HierarchyReport(o, "nlanr-bo1"); return show(t, err) }},
		{"latency", func() error { t, err := LatencyReport(o, "nlanr-bo1"); return show(t, err) }},
		{"metrics", func() error { t, err := MetricsReport(o, "nlanr-bo1", nil); return show(t, err) }},
		{"replicate", func() error { t, err := ReplicationReport(o, 5); return show(t, err) }},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
