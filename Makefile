GO ?= go
DATE ?= $(shell date +%F)
COUNT ?= 5
# Hot-path benchmark set recorded in BENCH_<date>.json: the substrate
# micro-benchmarks, the end-to-end simulator replays, and the live HTTP-path
# benchmarks, skipping the long-running figure regenerations in the root
# package.
BENCH_PKGS = ./internal/cache ./internal/index ./internal/core ./internal/proxy ./internal/workqueue .
BENCH_FILTER = '^(BenchmarkAccess|BenchmarkAccessProxyOnly|BenchmarkCache[A-Z].*|BenchmarkIndexAddRemoveHot|BenchmarkIndexOrdered|BenchmarkApplyBatch|BenchmarkApplyBatchContended|BenchmarkShardedOrdered|BenchmarkSimulatorBAPS|BenchmarkSimulatorProxyOnly|BenchmarkTraceStats|BenchmarkLiveFetchHot|BenchmarkLiveFetchOriginMiss|BenchmarkWorkqueue[A-Z].*)$$'
# Packages touched by the interning/sharding refactor, the observability
# subsystem, the batched index publish pipeline, the crash-safe disk
# tier, and the background work plane, raced in `make check`.
HOT_PKGS = ./internal/intern ./internal/cache ./internal/index ./internal/core ./internal/sim ./internal/trace ./internal/proxy ./internal/obs ./internal/chaos ./internal/browser ./internal/diskstore ./internal/breaker ./internal/federation ./internal/workqueue

.PHONY: all build vet test race short bench check staticcheck bench-baseline bench-compare loadtest loadtest-indexmodes loadtest-restart loadtest-federation loadtest-invalidation

all: build vet test

# Gate for hot-path changes: vet everything, full tests, then the refactored
# packages again under the race detector (covers the sharded-index churn and
# live-proxy concurrency tests). staticcheck runs when installed (always in
# CI); locally it is skipped with a notice rather than failing the gate.
check: vet test staticcheck
	$(GO) test -race $(HOT_PKGS)

# Static analysis (SA* checks, see staticcheck.conf). Gated on the binary
# being present so the target works in minimal containers without network
# access; CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (includes the live churn tests).
race:
	$(GO) test -race ./...

# Fast pass: skips the live chaos/churn tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Record a benchmark baseline as BENCH_<date>.json (override DATE=... to pin
# the filename). COUNT=5 gives benchstat-grade samples.
bench-baseline:
	$(GO) test -bench=$(BENCH_FILTER) -benchmem -count=$(COUNT) -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json

# Compare a fresh benchmark run against a recorded baseline:
#   make bench-compare BASELINE=BENCH_2026-08-05_baseline.json
bench-compare:
	@test -n "$(BASELINE)" || { echo "usage: make bench-compare BASELINE=BENCH_<date>.json"; exit 2; }
	$(GO) test -bench=$(BENCH_FILTER) -benchmem -count=$(COUNT) -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -compare $(BASELINE)

# 10-second closed-loop load smoke against an in-process loopback cluster
# (origin + proxy inside the bapsload process). Fails if nothing succeeds;
# the JSON report lands on stdout.
loadtest:
	$(GO) run ./cmd/bapsload -inprocess -clients 16 -docs 5000 -zipf 1.2 -duration 10s

# Crash/restart recovery gate: the in-process cluster runs with a disk tier,
# the proxy is SIGKILLed (Crash: no flush, no state save) mid-run and
# restarted on the same address and data directory. The report's `restart`
# section must show the hit ratio recovering to >= 90% of steady state with
# no post-restart origin spike beyond 2x. Writes LOAD_<date>_restart.json.
loadtest-restart:
	rm -rf /tmp/baps-loadtest-restart
	$(GO) run ./cmd/bapsload -inprocess -datadir /tmp/baps-loadtest-restart \
		-capacity 33554432 -clients 16 -docs 5000 -zipf 1.2 \
		-duration 24s -restartat 12s -restartdown 1s > LOAD_$(DATE)_restart.json
	@grep -E '"recovered"|"origin_spike_ok"|hit_ratio|restored_docs' LOAD_$(DATE)_restart.json
	@grep -q '"recovered": true' LOAD_$(DATE)_restart.json || { echo "restart recovery FAILED"; exit 1; }
	@grep -q '"origin_spike_ok": true' LOAD_$(DATE)_restart.json || { echo "origin spike gate FAILED"; exit 1; }

# Federation scale-out gate (DESIGN.md §13): the same closed loop against
# in-process clusters of 1, 2, and 4 digest-exchanging proxies, each capped
# at the same per-proxy admission rate to model one machine per proxy. The
# combined report must show aggregate RPS at 4 proxies >= 2x the single
# proxy with the aggregate hit ratio within 3 points (bapsload exits
# non-zero otherwise). Writes LOAD_<date>_federation.json.
loadtest-federation:
	$(GO) run ./cmd/bapsload -proxysweep "1,2,4" -clients 16 -docs 5000 \
		-zipf 1.2 -duration 8s -proxyrps 1200 -digestinterval 250ms \
		> LOAD_$(DATE)_federation.json \
		|| { cat LOAD_$(DATE)_federation.json; echo "federation scaling gate FAILED"; exit 1; }
	@grep -E '"aggregate_rps"|"aggregate_hit_ratio"|"rps_scaling"|"scaling_ok"|"hit_ratio_ok"|"bloom_fp_rate"|"cross_proxy_rate"' LOAD_$(DATE)_federation.json

# Invalidation-pipeline gate (DESIGN.md §14): modification churn against a
# 2-proxy federated cluster, run twice — background pipeline off, then on.
# bapsload exits non-zero unless the pipeline cuts the stale-serve rate >= 5x
# while origin fetches per modification stay <= 2 (steady state: one
# conditional refetch per modification). Writes LOAD_<date>_invalidation.json
# carrying both runs' reports.
loadtest-invalidation:
	$(GO) run ./cmd/bapsload -modrate 6 -proxies 2 -clients 8 -docs 400 \
		-zipf 1.3 -duration 8s > LOAD_$(DATE)_invalidation.json \
		|| { cat LOAD_$(DATE)_invalidation.json; echo "invalidation pipeline gate FAILED"; exit 1; }
	@grep -E '"stale_serves_total"|"origin_fetches_per_modification"|"stale_reduction"|"stale_ok"|"origin_ok"' LOAD_$(DATE)_invalidation.json

# Index-protocol comparison: the same closed loop driven through full browser
# agents under each §2 protocol, reporting index-maintenance requests per
# non-local fetch. Writes LOAD_<date>_index_<mode>.json per mode.
loadtest-indexmodes:
	for mode in immediate periodic batched; do \
		$(GO) run ./cmd/bapsload -inprocess -clients 16 -docs 5000 -zipf 1.2 \
			-duration 10s -indexmode $$mode > LOAD_$(DATE)_index_$$mode.json || exit 1; \
		grep -E '"rps"|index_requests' LOAD_$(DATE)_index_$$mode.json; \
	done
