GO ?= go
DATE ?= $(shell date +%F)
COUNT ?= 5
# Hot-path benchmark set recorded in BENCH_<date>.json: the substrate
# micro-benchmarks, the end-to-end simulator replays, and the live HTTP-path
# benchmarks, skipping the long-running figure regenerations in the root
# package.
BENCH_PKGS = ./internal/cache ./internal/index ./internal/core ./internal/proxy ./internal/workqueue ./internal/trace .
BENCH_FILTER = '^(BenchmarkAccess|BenchmarkAccessProxyOnly|BenchmarkCache[A-Z].*|BenchmarkIndexAddRemoveHot|BenchmarkIndexOrdered|BenchmarkApplyBatch|BenchmarkApplyBatchContended|BenchmarkShardedOrdered|BenchmarkSimulatorBAPS|BenchmarkSimulatorProxyOnly|BenchmarkTraceStats|BenchmarkTraceRead|BenchmarkTraceReadBTR|BenchmarkLiveFetchHot|BenchmarkLiveFetchOriginMiss|BenchmarkWorkqueue[A-Z].*)$$'
# Replay/driver-suite benchmark set (§16): the whole experiment-driver suite
# timed as one unit (BenchmarkAllExperiments) plus out-of-core streaming
# replay throughput (BenchmarkReplayStream). benchtime=1x because one
# "iteration" is a full multi-second driver sweep.
REPLAY_BENCH_FILTER = '^(BenchmarkAllExperiments|BenchmarkReplayStream)$$'
REPLAY_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*_replay_baseline.json)))
REPLAY_RECORD ?= $(lastword $(sort $(filter-out %_baseline.json,$(wildcard BENCH_*_replay.json))))
# Packages touched by the interning/sharding refactor, the observability
# subsystem, the batched index publish pipeline, the crash-safe disk
# tier, and the background work plane, raced in `make check`.
HOT_PKGS = ./internal/intern ./internal/cache ./internal/index ./internal/core ./internal/sim ./internal/trace ./internal/proxy ./internal/obs ./internal/chaos ./internal/browser ./internal/diskstore ./internal/breaker ./internal/federation ./internal/workqueue

.PHONY: all build vet test race short bench check staticcheck bench-baseline bench-compare bench-replay bench-replay-compare stream-smoke loadtest loadtest-indexmodes loadtest-restart loadtest-federation loadtest-invalidation soak soak-smoke

all: build vet test

# Gate for hot-path changes: vet everything, full tests, then the refactored
# packages again under the race detector (covers the sharded-index churn and
# live-proxy concurrency tests). staticcheck runs when installed (always in
# CI); locally it is skipped with a notice rather than failing the gate.
check: vet test staticcheck
	$(GO) test -race $(HOT_PKGS)

# Static analysis (SA* checks, see staticcheck.conf). Gated on the binary
# being present so the target works in minimal containers without network
# access; CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (includes the live churn tests).
race:
	$(GO) test -race ./...

# Fast pass: skips the live chaos/churn tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Record a benchmark baseline as BENCH_<date>.json (override DATE=... to pin
# the filename). COUNT=5 gives benchstat-grade samples.
bench-baseline:
	$(GO) test -bench=$(BENCH_FILTER) -benchmem -count=$(COUNT) -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE).json

# Compare a fresh benchmark run against a recorded baseline:
#   make bench-compare BASELINE=BENCH_2026-08-05_baseline.json
bench-compare:
	@test -n "$(BASELINE)" || { echo "usage: make bench-compare BASELINE=BENCH_<date>.json"; exit 2; }
	$(GO) test -bench=$(BENCH_FILTER) -benchmem -count=$(COUNT) -run=^$$ $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -compare $(BASELINE)

# Record the replay/driver-suite benchmark as BENCH_<date>_replay.json.
bench-replay:
	$(GO) test -bench=$(REPLAY_BENCH_FILTER) -benchmem -benchtime=1x -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson > BENCH_$(DATE)_replay.json

# Replay speedup gate: the checked-in post-optimization record must show
# the driver suite >= 1.5x faster than the checked-in sequential baseline
# (both measured on the same hardware — cross-machine ns/op ratios are
# meaningless, which is why the gate reads the two committed records
# instead of re-measuring on whatever box runs it).
bench-replay-compare:
	@test -n "$(REPLAY_BASELINE)" || { echo "no BENCH_*_replay_baseline.json found"; exit 2; }
	@test -n "$(REPLAY_RECORD)" || { echo "no BENCH_*_replay.json record found"; exit 2; }
	$(GO) run ./cmd/benchjson -compare $(REPLAY_BASELINE) -input $(REPLAY_RECORD) \
		-mingain BenchmarkAllExperiments=1.5

# 100k-client out-of-core replay smoke (CI): constant-memory generation of
# a 2M-request trace from the streaming synth profile, then a full
# streaming replay gated at a 1 GiB peak-RSS budget with progress logging.
# The replay report lands in STREAM_smoke_100k.txt (uploaded as a CI
# artifact).
stream-smoke:
	$(GO) run ./cmd/tracegen -profile synth-1m -clients 100000 -requests 2000000 \
		-stream -btr -o /tmp/baps-smoke-100k.btr
	$(GO) run ./cmd/bapsim -stream /tmp/baps-smoke-100k.btr -parallel 2 \
		-maxrss 1073741824 -progress 30s replay | tee STREAM_smoke_100k.txt
	rm -f /tmp/baps-smoke-100k.btr

# 10-second closed-loop load smoke against an in-process loopback cluster
# (origin + proxy inside the bapsload process). Fails if nothing succeeds;
# the JSON report lands on stdout.
loadtest:
	$(GO) run ./cmd/bapsload -inprocess -clients 16 -docs 5000 -zipf 1.2 -duration 10s

# Crash/restart recovery gate: the in-process cluster runs with a disk tier,
# the proxy is SIGKILLed (Crash: no flush, no state save) mid-run and
# restarted on the same address and data directory. The report's `restart`
# section must show the hit ratio recovering to >= 90% of steady state with
# no post-restart origin spike beyond 2x. Writes LOAD_<date>_restart.json.
loadtest-restart:
	rm -rf /tmp/baps-loadtest-restart
	$(GO) run ./cmd/bapsload -inprocess -datadir /tmp/baps-loadtest-restart \
		-capacity 33554432 -clients 16 -docs 5000 -zipf 1.2 \
		-duration 24s -restartat 12s -restartdown 1s > LOAD_$(DATE)_restart.json
	@grep -E '"recovered"|"origin_spike_ok"|hit_ratio|restored_docs' LOAD_$(DATE)_restart.json
	@grep -q '"recovered": true' LOAD_$(DATE)_restart.json || { echo "restart recovery FAILED"; exit 1; }
	@grep -q '"origin_spike_ok": true' LOAD_$(DATE)_restart.json || { echo "origin spike gate FAILED"; exit 1; }

# Federation scale-out gate (DESIGN.md §13): the same closed loop against
# in-process clusters of 1, 2, 4, and 8 digest-exchanging proxies, each
# capped at the same per-proxy admission rate to model one machine per
# proxy. With three doublings in the sweep the gate is per doubling: the
# combined report must show aggregate RPS growing >= 1.7x per doubling with
# the aggregate hit ratio within 3 points (bapsload exits non-zero
# otherwise). Writes LOAD_<date>_federation.json.
loadtest-federation:
	$(GO) run ./cmd/bapsload -proxysweep "1,2,4,8" -clients 12 -docs 5000 \
		-zipf 1.2 -duration 8s -proxyrps 450 -digestinterval 250ms \
		> LOAD_$(DATE)_federation.json \
		|| { cat LOAD_$(DATE)_federation.json; echo "federation scaling gate FAILED"; exit 1; }
	@grep -E '"aggregate_rps"|"aggregate_hit_ratio"|"rps_scaling"|"scaling_per_doubling"|"scaling_ok"|"hit_ratio_ok"|"bloom_fp_rate"|"cross_proxy_rate"' LOAD_$(DATE)_federation.json

# Lean-agent soak gate (DESIGN.md §15): 50,000 hosted agents across 8
# AgentHosts under 10 minutes of sustained closed-loop load with 30% fleet
# churn (individual kills and whole-host kills) and origin modification
# churn, sampling RSS / goroutines / RPS / p99 every second. Gates: hosted
# hit ratio within 2 points of the per-agent-server parity baseline, and
# peak RSS per agent <= 50 KiB. Writes LOAD_<date>_soak.json.
soak:
	$(GO) run ./cmd/bapsload -soak -agenthosts 8 -agentsperhost 6250 \
		-clients 64 -docs 20000 -zipf 1.2 -duration 10m -churn 0.3 \
		-modrate 5 -docsize 1024 -agentcache 16384 -capacity 67108864 \
		> LOAD_$(DATE)_soak.json \
		|| { grep -vE '"t_sec"|"rss_bytes"|"goroutines"|"rps"|"p99_ms"|"live_agents"|[{}],?$$' LOAD_$(DATE)_soak.json; echo "soak gate FAILED"; exit 1; }
	@grep -E '"agents"|"hit_ratio_delta"|"hit_ratio_ok"|"rss_per_agent_bytes"|"rss_per_agent_ok"|"agent_kills"|"host_kills"|"ok"' LOAD_$(DATE)_soak.json

# 60-second soak smoke for CI: a scaled-down fleet with the same churn
# profile, gated against the checked-in baseline (RPS >= 0.6x, p99 <= 2.5x,
# RSS per agent <= 1.4x) via -soakcompare. Writes LOAD_soak_smoke.json.
# Set SOAK_BASELINE= to record a fresh baseline without comparing.
SOAK_BASELINE ?= LOAD_soak_smoke_baseline.json
soak-smoke:
	$(GO) run ./cmd/bapsload -soak -agenthosts 4 -agentsperhost 500 \
		-clients 48 -docs 8000 -zipf 1.2 -duration 60s -churn 0.3 \
		-modrate 5 -docsize 1024 -agentcache 16384 -capacity 67108864 \
		$(if $(SOAK_BASELINE),-soakcompare $(SOAK_BASELINE),) \
		> LOAD_soak_smoke.json \
		|| { grep -vE '"t_sec"|"rss_bytes"|"goroutines"|"rps"|"p99_ms"|"live_agents"|[{}],?$$' LOAD_soak_smoke.json; echo "soak smoke gate FAILED"; exit 1; }
	@grep -E '"hit_ratio_delta"|"hit_ratio_ok"|"rss_per_agent_bytes"|"rss_per_agent_ok"|"rps_ratio"|"p99_ratio"|"rss_per_agent_ratio"|"ok"' LOAD_soak_smoke.json

# Invalidation-pipeline gate (DESIGN.md §14): modification churn against a
# 2-proxy federated cluster, run twice — background pipeline off, then on.
# bapsload exits non-zero unless the pipeline cuts the stale-serve rate >= 5x
# while origin fetches per modification stay <= 2 (steady state: one
# conditional refetch per modification). Writes LOAD_<date>_invalidation.json
# carrying both runs' reports.
loadtest-invalidation:
	$(GO) run ./cmd/bapsload -modrate 6 -proxies 2 -clients 8 -docs 400 \
		-zipf 1.3 -duration 8s > LOAD_$(DATE)_invalidation.json \
		|| { cat LOAD_$(DATE)_invalidation.json; echo "invalidation pipeline gate FAILED"; exit 1; }
	@grep -E '"stale_serves_total"|"origin_fetches_per_modification"|"stale_reduction"|"stale_ok"|"origin_ok"' LOAD_$(DATE)_invalidation.json

# Index-protocol comparison: the same closed loop driven through full browser
# agents under each §2 protocol, reporting index-maintenance requests per
# non-local fetch. Writes LOAD_<date>_index_<mode>.json per mode.
loadtest-indexmodes:
	for mode in immediate periodic batched; do \
		$(GO) run ./cmd/bapsload -inprocess -clients 16 -docs 5000 -zipf 1.2 \
			-duration 10s -indexmode $$mode > LOAD_$(DATE)_index_$$mode.json || exit 1; \
		grep -E '"rps"|index_requests' LOAD_$(DATE)_index_$$mode.json; \
	done
