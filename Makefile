GO ?= go

.PHONY: all build vet test race short bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (includes the live churn tests).
race:
	$(GO) test -race ./...

# Fast pass: skips the live chaos/churn tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
